//! The two "local" greedy algorithms of §5.2: Sequential Local Greedy
//! (SL-Greedy, Algorithm 2) and Randomized Local Greedy (RL-Greedy).
//!
//! Both finalise all recommendations for one time step before moving to the
//! next. SL-Greedy processes time steps chronologically; RL-Greedy samples `N`
//! random permutations of `[T]`, runs the per-step greedy under each, and
//! keeps the most profitable strategy (Example 4 of the paper shows why the
//! chronological order can be suboptimal).
//!
//! The per-time-step initial scan (one marginal-revenue evaluation per
//! candidate) decomposes per user — each user's candidates are CSR-contiguous
//! and the evaluations are read-only — so it can be filled by scoped threads
//! cut at user boundaries (see [`crate::par`]). The parallel and sequential
//! scans are bit-identical, which the equivalence tests assert.

use crate::config::{PlanAlgorithm, PlannerConfig};
use crate::global_greedy::{EngineKind, GreedyOutcome};
use crate::heap::{GreedyHeap, HeapKind, IndexedDaryHeap, LazyMaxHeap};
use crate::par;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use revmax_core::{
    CandidateId, HashIncrementalRevenue, IncrementalRevenue, Instance, ResidualDelta,
    RevenueEngine, TimeStep,
};
use std::collections::HashSet;

/// Options controlling the local greedy algorithms.
///
/// Superseded by [`PlannerConfig`], which unifies this struct with
/// `GreedyOptions` and the serving layer's options behind one surface; a
/// `LocalGreedyOptions` converts losslessly via `PlannerConfig::from`.
#[deprecated(
    since = "0.2.0",
    note = "use PlannerConfig (this struct converts via `PlannerConfig::from`); removal scheduled for 0.4.0"
)]
#[derive(Debug, Clone, Copy)]
pub struct LocalGreedyOptions {
    /// Incremental engine backing the run.
    pub engine: EngineKind,
    /// Fill each time step's initial marginal-revenue scan with scoped
    /// threads, cut at user boundaries. `None` (default) auto-enables the
    /// parallel scan on large instances; `Some(x)` forces it on or off.
    pub parallel_scan: Option<bool>,
    /// Heap implementation backing the per-time-step selection loop.
    pub heap: HeapKind,
    /// Number of user shards (`0`/`1` = sequential driver, `n ≥ 2` = the
    /// shard-partitioned core of [`crate::sharded`]).
    pub shards: u32,
}

#[allow(deprecated)]
impl Default for LocalGreedyOptions {
    fn default() -> Self {
        LocalGreedyOptions {
            engine: EngineKind::default(),
            parallel_scan: None,
            heap: HeapKind::default(),
            shards: 1,
        }
    }
}

/// Candidate count above which the per-step scan defaults to parallel.
pub(crate) const PARALLEL_SCAN_THRESHOLD: usize = 1 << 13;

/// Runs SL-Greedy: per-time-step greedy in chronological order `1, 2, …, T`.
pub fn sequential_local_greedy(inst: &Instance) -> GreedyOutcome {
    let order: Vec<u32> = (1..=inst.horizon()).collect();
    local_greedy_with_order(inst, &order)
}

/// Runs the per-time-step greedy under an explicit ordering of time steps and
/// returns the resulting strategy.
///
/// The ordering must be a permutation of `1..=T`; a subset is also accepted
/// (only those time steps receive recommendations), which the incomplete-price
/// experiments use.
pub fn local_greedy_with_order(inst: &Instance, order: &[u32]) -> GreedyOutcome {
    dispatch_order(inst, order, &PlannerConfig::default(), None)
}

/// [`local_greedy_with_order`] with explicit engine / parallelism options.
#[deprecated(
    since = "0.2.0",
    note = "use plan_order with a PlannerConfig; removal scheduled for 0.4.0"
)]
#[allow(deprecated)]
pub fn local_greedy_with_order_opts(
    inst: &Instance,
    order: &[u32],
    opts: &LocalGreedyOptions,
) -> GreedyOutcome {
    dispatch_order(inst, order, &PlannerConfig::from(*opts), None)
}

/// The per-time-step driver dispatch: shard count, engine, heap. `delta` is
/// the warm-start handle of a residual replan (`None` for one-shot plans).
pub(crate) fn dispatch_order(
    inst: &Instance,
    order: &[u32],
    cfg: &PlannerConfig,
    delta: Option<&ResidualDelta>,
) -> GreedyOutcome {
    if cfg.shards > 1 {
        return crate::sharded::sharded_plan_order_residual(
            inst,
            order,
            cfg,
            cfg.shards as usize,
            delta,
        );
    }
    use HeapKind::{IndexedDary, Lazy};
    match (cfg.engine, cfg.heap) {
        (EngineKind::Flat, Lazy) => {
            run_order::<IncrementalRevenue<'_>, LazyMaxHeap>(inst, order, cfg, delta)
        }
        (EngineKind::Flat, IndexedDary) => {
            run_order::<IncrementalRevenue<'_>, IndexedDaryHeap>(inst, order, cfg, delta)
        }
        (EngineKind::Hash, Lazy) => {
            run_order::<HashIncrementalRevenue<'_>, LazyMaxHeap>(inst, order, cfg, delta)
        }
        (EngineKind::Hash, IndexedDary) => {
            run_order::<HashIncrementalRevenue<'_>, IndexedDaryHeap>(inst, order, cfg, delta)
        }
    }
}

fn run_order<'a, E: RevenueEngine<'a>, H: GreedyHeap>(
    inst: &'a Instance,
    order: &[u32],
    cfg: &PlannerConfig,
    delta: Option<&ResidualDelta>,
) -> GreedyOutcome {
    let mut inc: E = crate::global_greedy::make_engine(inst, false, inst.full_shard(), cfg, delta);
    let mut evals = 0u64;
    let mut trace = Vec::new();
    let parallel = cfg
        .parallel
        .unwrap_or(inst.num_candidates() >= PARALLEL_SCAN_THRESHOLD);
    for &t in order {
        run_time_step::<E, H>(
            inst,
            &mut inc,
            TimeStep(t),
            parallel,
            cfg.kernel_batch,
            &mut evals,
            &mut trace,
        );
    }
    let revenue = inc.revenue();
    GreedyOutcome {
        revenue,
        selection_objective: revenue,
        strategy: inc.into_strategy(),
        trace,
        marginal_evaluations: evals,
        concurrency: Default::default(),
    }
}

/// Greedily fills the recommendation slots of a single time step given the
/// strategy accumulated so far (lines 5–15 of Algorithm 2, with lazy
/// forward). `kernel_batch ≥ 1` selects the batched selection loop: stale
/// heap tops are refreshed in kernel-grouped bursts of up to `kernel_batch`
/// candidates (see `crate::global_greedy::collect_stale_run` for the
/// plan-preservation argument); `0` runs the legacy scalar loop. Both
/// produce identical plans (asserted by the kernel parity suite).
pub(crate) fn run_time_step<'a, E: RevenueEngine<'a>, H: GreedyHeap>(
    inst: &'a Instance,
    inc: &mut E,
    t: TimeStep,
    parallel_scan: bool,
    kernel_batch: u32,
    evals: &mut u64,
    trace: &mut Vec<f64>,
) {
    let num_cand = inst.num_candidates();
    if num_cand == 0 {
        return;
    }
    // Initial scan: one read-only marginal evaluation per candidate. This is
    // the per-user decomposition — candidates are CSR-contiguous per user, so
    // cutting at user boundaries gives each worker disjoint users.
    let mut values = vec![f64::NEG_INFINITY; num_cand];
    let scan = |c: usize| inc.marginal_revenue_cand(CandidateId(c as u32), t);
    if parallel_scan {
        let cuts = par::balanced_cuts(inst.user_cand_offsets(), par::worker_count(num_cand));
        par::fill_by_cuts(&mut values, &cuts, scan);
    } else {
        for (c, v) in values.iter_mut().enumerate() {
            *v = scan(c);
        }
    }
    *evals += num_cand as u64;
    let mut flags = vec![0u32; num_cand];
    for (c, f) in flags.iter_mut().enumerate() {
        *f = inc.group_size_cand(CandidateId(c as u32)) as u32;
    }

    let mut heap = H::build(&values);
    if kernel_batch == 0 {
        // Legacy scalar loop: one heap round trip per examined candidate.
        while let Some((cand_idx, value)) = heap.pop() {
            if value <= 0.0 {
                break;
            }
            let cand = CandidateId(cand_idx);
            if inc.would_violate_cand(cand, t) {
                heap.remove(cand_idx);
                continue;
            }
            let group_size = inc.group_size_cand(cand) as u32;
            if flags[cand_idx as usize] == group_size {
                inc.insert_cand(cand, t);
                heap.remove(cand_idx);
                trace.push(inc.revenue());
            } else {
                let fresh = inc.marginal_revenue_cand(cand, t);
                *evals += 1;
                flags[cand_idx as usize] = group_size;
                heap.update(cand_idx, fresh);
            }
        }
        return;
    }

    // Batched loop: a stale top starts a kernel-grouped refresh burst over
    // the run of stale tops below it. Single-time-step variant of the
    // two-level burst — staleness is per candidate (one slot per candidate
    // here), and no insertion happens inside a burst, so burst refreshes
    // write the same values the scalar loop writes at surfacing time.
    let batch_cap = kernel_batch as usize;
    let mut run: Vec<(u8, u32, u32)> = Vec::with_capacity(batch_cap);
    let mut held = heap.pop();
    while let Some((cand_idx, value)) = held {
        if value <= 0.0 {
            break;
        }
        let cand = CandidateId(cand_idx);
        if inc.would_violate_cand(cand, t) {
            heap.remove(cand_idx);
            held = heap.pop();
            continue;
        }
        let group_size = inc.group_size_cand(cand) as u32;
        if flags[cand_idx as usize] == group_size {
            inc.insert_cand(cand, t);
            trace.push(inc.revenue());
            heap.remove(cand_idx);
            held = heap.pop();
        } else {
            run.clear();
            run.push((inc.kernel_id_cand(cand), cand_idx, group_size));
            while run.len() < batch_cap {
                let Some((next, next_v)) = heap.peek() else {
                    break;
                };
                if next_v <= 0.0 {
                    break;
                }
                let next_cand = CandidateId(next);
                if inc.would_violate_cand(next_cand, t) {
                    break;
                }
                let gs = inc.group_size_cand(next_cand) as u32;
                if flags[next as usize] == gs {
                    break;
                }
                heap.pop();
                run.push((inc.kernel_id_cand(next_cand), next, gs));
            }
            if run.len() > 1 {
                run.sort_unstable_by_key(|&(k, idx, _)| (k, idx));
            }
            for &(_, idx, gs) in &run {
                let fresh = inc.marginal_revenue_cand(CandidateId(idx), t);
                *evals += 1;
                flags[idx as usize] = gs;
                heap.update(idx, fresh);
            }
            held = heap.pop();
        }
    }
}

/// Generates up to `n` distinct permutations of `1..=horizon` (always including
/// the chronological one first, as a safe fallback).
pub fn sample_permutations(horizon: u32, n: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<u32> = (1..=horizon).collect();
    let mut seen: HashSet<Vec<u32>> = HashSet::new();
    let mut out = Vec::new();
    seen.insert(base.clone());
    out.push(base.clone());
    // T! can be tiny (e.g. T = 2); stop once all permutations are exhausted.
    let factorial: u64 = (1..=horizon as u64).product::<u64>().max(1);
    let target = n.max(1).min(factorial as usize);
    let mut attempts = 0;
    while out.len() < target && attempts < 50 * target {
        attempts += 1;
        let mut p = base.clone();
        p.shuffle(&mut rng);
        if seen.insert(p.clone()) {
            out.push(p);
        }
    }
    out
}

/// Runs RL-Greedy: `permutations` random orderings of `[T]`, per-step greedy
/// under each, best strategy returned. Independent orders run on scoped
/// threads; only then is each run's inner scan forced sequential (to avoid
/// oversubscription) — a single-order or single-core run keeps the default
/// per-user parallel scan.
pub fn randomized_local_greedy(inst: &Instance, permutations: usize, seed: u64) -> GreedyOutcome {
    randomized_with(
        inst,
        &PlannerConfig::default().with_seed(seed),
        permutations,
        None,
    )
}

/// RL-Greedy over an explicit configuration (engine, heap, shards, seed).
pub(crate) fn randomized_with(
    inst: &Instance,
    cfg: &PlannerConfig,
    permutations: usize,
    delta: Option<&ResidualDelta>,
) -> GreedyOutcome {
    let orders = sample_permutations(inst.horizon(), permutations, cfg.seed);
    let threads = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(orders.len())
        .max(1);
    let concurrent_orders = threads > 1 && orders.len() > 1;
    let inner = PlannerConfig {
        algorithm: PlanAlgorithm::SequentialLocalGreedy,
        parallel: if concurrent_orders {
            Some(false)
        } else {
            cfg.parallel
        },
        ..*cfg
    };
    let results: Vec<GreedyOutcome> = if !concurrent_orders {
        orders
            .iter()
            .map(|o| dispatch_order(inst, o, &inner, delta))
            .collect()
    } else {
        let chunks: Vec<&[Vec<u32>]> = orders.chunks(orders.len().div_ceil(threads)).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|o| dispatch_order(inst, o, &inner, delta))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };
    results
        .into_iter()
        .max_by(|a, b| a.revenue.partial_cmp(&b.revenue).expect("finite revenues"))
        .expect("at least one permutation is always evaluated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::{revenue, InstanceBuilder};

    fn example4_instance() -> Instance {
        let mut b = InstanceBuilder::new(1, 1, 2);
        b.display_limit(1)
            .capacity(0, 2)
            .beta(0, 0.1)
            .prices(0, &[1.0, 0.95])
            .candidate(0, 0, &[0.5, 0.6], 0.0);
        b.build().unwrap()
    }

    fn medium_instance() -> Instance {
        let mut b = InstanceBuilder::new(3, 4, 3);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .item_class(3, 1)
            .beta(0, 0.3)
            .beta(1, 0.8)
            .beta(2, 0.5)
            .beta(3, 0.9)
            .capacity(0, 2)
            .capacity(1, 2)
            .capacity(2, 3)
            .capacity(3, 1)
            .prices(0, &[20.0, 15.0, 18.0])
            .prices(1, &[8.0, 9.0, 7.0])
            .prices(2, &[12.0, 12.0, 11.0])
            .prices(3, &[30.0, 25.0, 35.0]);
        for u in 0..3 {
            b.candidate(u, 0, &[0.4, 0.6, 0.5], 4.0);
            b.candidate(u, 1, &[0.7, 0.5, 0.6], 3.0);
            b.candidate(u, 2, &[0.3, 0.2, 0.4], 3.5);
            b.candidate(u, 3, &[0.2, 0.25, 0.15], 4.5);
        }
        b.build().unwrap()
    }

    #[test]
    fn example4_sl_greedy_falls_into_the_chronological_trap() {
        // SL-Greedy processes t=1 first and picks the (positive-marginal)
        // day-1 recommendation, ending with the inferior strategy of Example 4.
        let inst = example4_instance();
        let sl = sequential_local_greedy(&inst);
        assert!((sl.revenue - 0.5285).abs() < 1e-9);
        // RL-Greedy tries the reversed order too and escapes.
        let rl = randomized_local_greedy(&inst, 2, 1);
        assert!((rl.revenue - 0.57).abs() < 1e-9);
        assert!(rl.revenue > sl.revenue);
    }

    #[test]
    fn outputs_are_valid_strategies() {
        let inst = medium_instance();
        for out in [
            sequential_local_greedy(&inst),
            randomized_local_greedy(&inst, 4, 7),
        ] {
            assert!(out.strategy.validate(&inst).is_ok());
            assert!(out.revenue > 0.0);
            assert!((out.revenue - revenue(&inst, &out.strategy)).abs() < 1e-9);
        }
    }

    #[test]
    fn rl_greedy_is_at_least_as_good_as_sl_greedy() {
        let inst = medium_instance();
        let sl = sequential_local_greedy(&inst);
        let rl = randomized_local_greedy(&inst, 6, 3);
        // RL always evaluates the chronological order too.
        assert!(rl.revenue + 1e-9 >= sl.revenue);
    }

    #[test]
    fn parallel_and_sequential_scans_are_identical() {
        let inst = medium_instance();
        let order: Vec<u32> = (1..=inst.horizon()).collect();
        let seq = dispatch_order(
            &inst,
            &order,
            &PlannerConfig::default().with_parallel(Some(false)),
            None,
        );
        let par = dispatch_order(
            &inst,
            &order,
            &PlannerConfig::default().with_parallel(Some(true)),
            None,
        );
        assert_eq!(seq.revenue.to_bits(), par.revenue.to_bits());
        assert_eq!(seq.strategy.as_slice(), par.strategy.as_slice());
    }

    #[test]
    fn hash_engine_reproduces_flat_engine_results() {
        let inst = medium_instance();
        let order: Vec<u32> = (1..=inst.horizon()).collect();
        let flat = local_greedy_with_order(&inst, &order);
        let hash = dispatch_order(
            &inst,
            &order,
            &PlannerConfig::default().with_engine(EngineKind::Hash),
            None,
        );
        assert!((flat.revenue - hash.revenue).abs() < 1e-9);
        assert_eq!(flat.strategy.len(), hash.strategy.len());
    }

    #[test]
    fn permutation_sampling_is_distinct_and_bounded() {
        let perms = sample_permutations(3, 10, 1);
        assert!(perms.len() <= 6);
        let unique: HashSet<_> = perms.iter().cloned().collect();
        assert_eq!(unique.len(), perms.len());
        assert_eq!(perms[0], vec![1, 2, 3]);
        for p in &perms {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 2, 3]);
        }
        // Degenerate horizon.
        assert_eq!(sample_permutations(1, 5, 0), vec![vec![1]]);
    }

    #[test]
    fn partial_order_restricts_time_steps() {
        let inst = medium_instance();
        let out = local_greedy_with_order(&inst, &[2]);
        assert!(out.strategy.iter().all(|z| z.t.value() == 2));
        assert!(!out.strategy.is_empty());
    }

    #[test]
    fn trace_is_monotone_within_runs() {
        let inst = medium_instance();
        let out = sequential_local_greedy(&inst);
        for w in out.trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
    }
}
