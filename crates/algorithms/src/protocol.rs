//! The shard/ledger claim protocol, as code.
//!
//! Both sharded drivers (`sharded_plan` and `sharded_plan_order`) couple
//! their shard workers through a [`SharedCapacityLedgerIn`] and follow the
//! same two-step capacity discipline per candidate:
//!
//! 1. **gate** — before granting a display, check [`claim_blocked`]: a
//!    candidate whose `(item, user)` pair has not yet claimed is dead when
//!    the item is full for that user;
//! 2. **commit** — on the first display of the pair, [`commit_claim`]: mark
//!    the pair counted in the shard-local dedup bitmap and claim one
//!    capacity unit through the shared ledger (exempt pairs succeed without
//!    consuming).
//!
//! This module is the *instrumentation seam* for the analysis toolchain:
//! the functions are generic over [`LedgerCell`], so `cargo xtask
//! check-ledger` executes the **identical code** the production drivers run
//! — only the cell type changes, from `AtomicCell` to an instrumented cell
//! whose every load/RMW is routed through a schedule controller. The
//! model-checker scenarios for the held-slot rotation (claim-gated
//! publication of a shard's held move) call straight into these functions;
//! see `docs/concurrency.md` for the protocol's memory-ordering contract
//! and `ARCHITECTURE.md` § "Analysis toolchain" for how the ROADMAP-1
//! speculative-shard executor is expected to extend them.
//!
//! Keep these functions in sync with nothing: they *are* the protocol; the
//! drivers call them.

use revmax_core::{ItemId, LedgerCell, SharedCapacityLedgerIn, UserId};

/// Whether a candidate's capacity gate blocks its display: the `(item,
/// user)` pair has not claimed yet (`counted == false`) **and** the item is
/// full for this user (exempt pairs are never blocked).
///
/// Pure reads; safe to evaluate speculatively — a `false` answer can go
/// stale the moment another shard claims the last unit, which is why the
/// commit step re-validates through the ledger's CAS.
#[inline]
pub fn claim_blocked<C: LedgerCell>(
    ledger: &SharedCapacityLedgerIn<C>,
    counted: bool,
    item: ItemId,
    user: UserId,
) -> bool {
    !counted && ledger.is_full_for(item, user)
}

/// Commits the capacity side of a display: on the pair's first display
/// (`counted == false`), marks it counted and claims one unit through the
/// shared ledger. Returns whether the ledger granted the claim (`true` for
/// exempt pairs and for every repeat display).
///
/// Under the deterministic value-ordered arbitration the grant can never be
/// denied — the coordinator only commits the globally leading move, and it
/// checked [`claim_blocked`] first with no competing commit in between. The
/// arbitrated drivers therefore `debug_assert!` on the result. A
/// *speculative* executor (ROADMAP-1) runs commits concurrently, must treat
/// `false` as a conflict, and rolls back — the pair stays `counted`, so the
/// rollback must clear the flag itself (and [`SharedCapacityLedgerIn::release`]
/// any units the rolled-back suffix did win).
#[inline]
pub fn commit_claim<C: LedgerCell>(
    ledger: &SharedCapacityLedgerIn<C>,
    counted: &mut bool,
    item: ItemId,
    user: UserId,
) -> bool {
    if *counted {
        return true;
    }
    *counted = true;
    ledger.try_claim_for(item, user)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::{InstanceBuilder, SharedCapacityLedger};

    #[test]
    fn gate_then_commit_follows_ledger_semantics() {
        let mut b = InstanceBuilder::new(3, 1, 1);
        b.capacity(0, 1)
            .constant_price(0, 1.0)
            .candidate(0, 0, &[0.5], 0.0)
            .exempt_user(0, 2);
        let inst = b.build().unwrap();
        let ledger = SharedCapacityLedger::new(&inst);

        let (item, user) = (ItemId(0), UserId(0));
        let mut counted = false;
        assert!(!claim_blocked(&ledger, counted, item, user));
        assert!(commit_claim(&ledger, &mut counted, item, user));
        assert!(counted);
        // Repeat displays of a counted pair are never gated and commit free.
        assert!(!claim_blocked(&ledger, counted, item, user));
        assert!(commit_claim(&ledger, &mut counted, item, user));
        assert_eq!(ledger.used(item), 1);

        // A different user is gated now that the item is full...
        let mut counted2 = false;
        assert!(claim_blocked(&ledger, counted2, item, UserId(1)));
        // ...but an exempt user is not, and commits without consuming.
        let mut counted_ex = false;
        assert!(!claim_blocked(&ledger, counted_ex, item, UserId(2)));
        assert!(commit_claim(&ledger, &mut counted_ex, item, UserId(2)));
        assert_eq!(ledger.used(item), 1);

        // A speculative commit that loses the race reports the conflict.
        assert!(!commit_claim(&ledger, &mut counted2, item, UserId(1)));
    }
}
