//! The shard/ledger claim protocol, as code.
//!
//! Both sharded drivers (`sharded_plan` and `sharded_plan_order`) couple
//! their shard workers through a [`SharedCapacityLedgerIn`] and follow the
//! same two-step capacity discipline per candidate:
//!
//! 1. **gate** — before granting a display, check [`claim_blocked`]: a
//!    candidate whose `(item, user)` pair has not yet claimed is dead when
//!    the item is full for that user;
//! 2. **commit** — on the first display of the pair, [`commit_claim`]: mark
//!    the pair counted in the shard-local dedup bitmap and claim one
//!    capacity unit through the shared ledger (exempt pairs succeed without
//!    consuming).
//!
//! This module is the *instrumentation seam* for the analysis toolchain:
//! the functions are generic over [`LedgerCell`], so `cargo xtask
//! check-ledger` executes the **identical code** the production drivers run
//! — only the cell type changes, from `AtomicCell` to an instrumented cell
//! whose every load/RMW is routed through a schedule controller. The
//! model-checker scenarios for the held-slot rotation (claim-gated
//! publication of a shard's held move) call straight into these functions;
//! see `docs/concurrency.md` for the protocol's memory-ordering contract
//! and `ARCHITECTURE.md` § "Analysis toolchain" for how the ROADMAP-1
//! speculative-shard executor is expected to extend them.
//!
//! Keep these functions in sync with nothing: they *are* the protocol; the
//! drivers call them.

use revmax_core::{ItemId, LedgerCell, SharedCapacityLedgerIn, UserId};

/// Whether a candidate's capacity gate blocks its display: the `(item,
/// user)` pair has not claimed yet (`counted == false`) **and** the item is
/// full for this user (exempt pairs are never blocked).
///
/// Pure reads; safe to evaluate speculatively — a `false` answer can go
/// stale the moment another shard claims the last unit, which is why the
/// commit step re-validates through the ledger's CAS.
#[inline]
pub fn claim_blocked<C: LedgerCell>(
    ledger: &SharedCapacityLedgerIn<C>,
    counted: bool,
    item: ItemId,
    user: UserId,
) -> bool {
    !counted && ledger.is_full_for(item, user)
}

/// Commits the capacity side of a display: on the pair's first display
/// (`counted == false`), marks it counted and claims one unit through the
/// shared ledger. Returns whether the ledger granted the claim (`true` for
/// exempt pairs and for every repeat display).
///
/// Under the deterministic value-ordered arbitration the grant can never be
/// denied — the coordinator only commits the globally leading move, and it
/// checked [`claim_blocked`] first with no competing commit in between. The
/// arbitrated drivers therefore `debug_assert!` on the result. A
/// *speculative* executor (ROADMAP-1) runs commits concurrently, must treat
/// `false` as a conflict, and rolls back — the pair stays `counted`, so the
/// rollback must clear the flag itself (and [`SharedCapacityLedgerIn::release`]
/// any units the rolled-back suffix did win).
#[inline]
pub fn commit_claim<C: LedgerCell>(
    ledger: &SharedCapacityLedgerIn<C>,
    counted: &mut bool,
    item: ItemId,
    user: UserId,
) -> bool {
    if *counted {
        return true;
    }
    *counted = true;
    ledger.try_claim_for(item, user)
}

// ---------------------------------------------------------------------------
// The concurrent (scarcity-window) protocol
//
// The concurrent shard executor splits the capacity discipline by the
// ledger's capacity-window analysis (`SharedCapacityLedgerIn::is_scarce`):
// claims against *abundant* items are order-insensitive and commit
// lock-free through `fast_commit_claim`; claims against scarce-window items
// become speculative proposals (`speculative_claim`) that park for the
// coordinator, which sequences them in the sequential selection order and
// resolves each through exactly one of `admit_granted` / `admit_claim` /
// `steal_speculative` / `reject_claim`. Free-running gates read the
// *committed* count (`claim_blocked_committed`) because speculative units
// may still be stolen by a sequentially earlier claim.
// ---------------------------------------------------------------------------

/// The committed-basis capacity gate for free-running shard workers:
/// like [`claim_blocked`], but blind to speculative units held by parked
/// proposals. A `true` answer is final — committed units are never
/// released, so an item committed-full now is committed-full at every
/// later (in particular, at the move's sequential) position, and retiring
/// the candidate immediately is exact, not speculative.
#[inline]
pub fn claim_blocked_committed<C: LedgerCell>(
    ledger: &SharedCapacityLedgerIn<C>,
    counted: bool,
    item: ItemId,
    user: UserId,
) -> bool {
    !counted && ledger.is_full_committed_for(item, user)
}

/// The lock-free commit for moves outside the scarcity window (counted or
/// exempt pairs, or abundant items). On the pair's first commit, claims one
/// unit and retires the pair's demand. Unlike [`commit_claim`], a denied
/// claim leaves `counted` **unset**: denial means the item migrated into
/// the window after the caller's abundance check (see
/// `SharedCapacityLedgerIn::is_scarce` — only an engine-side `charge` can
/// cause this), and the caller must re-route the move through arbitration
/// rather than treat the pair as claimed. Skipping that re-check is the
/// seeded-defect mutant of the `cargo xtask check-ledger` migration
/// scenario.
#[inline]
pub fn fast_commit_claim<C: LedgerCell>(
    ledger: &SharedCapacityLedgerIn<C>,
    counted: &mut bool,
    item: ItemId,
    user: UserId,
) -> bool {
    if *counted {
        return true;
    }
    if ledger.try_claim_for(item, user) {
        *counted = true;
        ledger.retire_demand(item, user);
        true
    } else {
        false
    }
}

/// Claims capacity speculatively for a scarce-window proposal that is
/// about to park. Returns whether a unit was granted; either way the
/// proposal parks and the coordinator decides its fate. The caller only
/// proposes uncounted, non-exempt pairs (counted and exempt moves take
/// [`fast_commit_claim`]).
#[inline]
pub fn speculative_claim<C: LedgerCell>(
    ledger: &SharedCapacityLedgerIn<C>,
    item: ItemId,
    user: UserId,
) -> bool {
    debug_assert!(
        !ledger.is_exempt(item, user),
        "exempt pairs never enter the scarce window"
    );
    ledger.try_claim_spec(item)
}

/// Coordinator resolution: admits a parked proposal that **holds** a
/// speculative unit — the unit converts to a committed claim and the
/// pair's demand retires. A granted proposal is always admissible: its own
/// unit is excluded from the committed count, so the committed-full test
/// that rejects claims can never fire against it.
#[inline]
pub fn admit_granted<C: LedgerCell>(
    ledger: &SharedCapacityLedgerIn<C>,
    item: ItemId,
    user: UserId,
) {
    ledger.commit_spec(item);
    ledger.retire_demand(item, user);
}

/// Coordinator resolution: admits a parked proposal that holds **no**
/// speculative unit by claiming directly. `false` means the raw count is
/// full — either the item is committed-full (reject the proposal) or a
/// speculative unit of a sequentially *later* proposal holds the last
/// slot (steal it with [`steal_speculative`] and retry).
#[inline]
pub fn admit_claim<C: LedgerCell>(
    ledger: &SharedCapacityLedgerIn<C>,
    item: ItemId,
    user: UserId,
) -> bool {
    if ledger.try_claim_for(item, user) {
        ledger.retire_demand(item, user);
        true
    } else {
        false
    }
}

/// Coordinator resolution: steals a speculative unit from a parked victim
/// proposal on behalf of a sequentially earlier claim — the
/// claim-then-release-on-reject rollback path. The victim's proposal
/// stays parked (now ungranted) and is re-judged at its own turn.
/// Barrier-quiescent, like every `release_spec` call.
#[inline]
pub fn steal_speculative<C: LedgerCell>(ledger: &SharedCapacityLedgerIn<C>, item: ItemId) {
    ledger.release_spec(item);
}

/// Coordinator resolution: rejects a parked (ungranted) proposal — the
/// item is committed-full, the sequential run would have gated the
/// candidate, and the pair dies without a claim.
#[inline]
pub fn reject_claim<C: LedgerCell>(ledger: &SharedCapacityLedgerIn<C>, item: ItemId, user: UserId) {
    ledger.retire_demand(item, user);
}

/// Retires a candidate pair that died during a shard's free run (capacity
/// gate, display exhaustion, or value decay) so the scarcity window can
/// shrink behind it. Demand retirement is a window *optimisation*: a
/// missed retirement only keeps an item scarce longer.
#[inline]
pub fn retire_candidate<C: LedgerCell>(
    ledger: &SharedCapacityLedgerIn<C>,
    item: ItemId,
    user: UserId,
) {
    ledger.retire_demand(item, user);
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::{InstanceBuilder, SharedCapacityLedger};

    #[test]
    fn gate_then_commit_follows_ledger_semantics() {
        let mut b = InstanceBuilder::new(3, 1, 1);
        b.capacity(0, 1)
            .constant_price(0, 1.0)
            .candidate(0, 0, &[0.5], 0.0)
            .exempt_user(0, 2);
        let inst = b.build().unwrap();
        let ledger = SharedCapacityLedger::new(&inst);

        let (item, user) = (ItemId(0), UserId(0));
        let mut counted = false;
        assert!(!claim_blocked(&ledger, counted, item, user));
        assert!(commit_claim(&ledger, &mut counted, item, user));
        assert!(counted);
        // Repeat displays of a counted pair are never gated and commit free.
        assert!(!claim_blocked(&ledger, counted, item, user));
        assert!(commit_claim(&ledger, &mut counted, item, user));
        assert_eq!(ledger.used(item), 1);

        // A different user is gated now that the item is full...
        let mut counted2 = false;
        assert!(claim_blocked(&ledger, counted2, item, UserId(1)));
        // ...but an exempt user is not, and commits without consuming.
        let mut counted_ex = false;
        assert!(!claim_blocked(&ledger, counted_ex, item, UserId(2)));
        assert!(commit_claim(&ledger, &mut counted_ex, item, UserId(2)));
        assert_eq!(ledger.used(item), 1);

        // A speculative commit that loses the race reports the conflict.
        assert!(!commit_claim(&ledger, &mut counted2, item, UserId(1)));
    }

    #[test]
    fn window_protocol_admits_steals_and_rejects() {
        // One item, capacity 2, three non-exempt candidates -> scarce from
        // the start (demand 3 > cap 2).
        let mut b = InstanceBuilder::new(3, 1, 1);
        b.capacity(0, 2).constant_price(0, 1.0);
        for u in 0..3 {
            b.candidate(u, 0, &[0.5], 0.0);
        }
        let inst = b.build().unwrap();
        let ledger = SharedCapacityLedger::new(&inst);
        let item = ItemId(0);
        assert!(ledger.is_scarce(item));

        // A scarce item never takes the fast path uncounted; but once a
        // pair is counted, fast_commit_claim is a free repeat.
        let mut counted = false;
        assert!(!claim_blocked_committed(&ledger, counted, item, UserId(0)));

        // Two proposals park with granted speculative units; a third is
        // denied but still parks.
        assert!(speculative_claim(&ledger, item, UserId(0)));
        assert!(speculative_claim(&ledger, item, UserId(1)));
        assert!(!speculative_claim(&ledger, item, UserId(2)));
        assert_eq!(ledger.used(item), 2);
        assert_eq!(ledger.committed_used(item), 0);

        // Coordinator: admit the granted leader -> one committed unit.
        admit_granted(&ledger, item, UserId(0));
        counted = true;
        assert!(fast_commit_claim(&ledger, &mut counted, item, UserId(0)));
        assert_eq!(ledger.committed_used(item), 1);

        // The ungranted proposal is sequentially earlier than the second
        // granted one: direct claim fails (raw count full), so it steals
        // the victim's unit and retries successfully.
        assert!(!admit_claim(&ledger, item, UserId(2)));
        steal_speculative(&ledger, item);
        assert!(admit_claim(&ledger, item, UserId(2)));
        assert_eq!(ledger.committed_used(item), 2);

        // The stolen-from victim is now committed-blocked and rejected;
        // rejection retires the last demand, closing the window.
        assert!(claim_blocked_committed(&ledger, false, item, UserId(1)));
        reject_claim(&ledger, item, UserId(1));
        assert_eq!(ledger.demand(item), 0);
        assert!(!ledger.is_scarce(item));
        assert_eq!(ledger.speculative(item), 0);
    }

    #[test]
    fn fast_commit_denial_leaves_pair_uncounted() {
        // Item abundant by the window (demand 1 <= cap 1) but an
        // engine-side charge consumes the unit out of band -> the fast
        // path's claim is denied and must NOT mark the pair counted.
        let mut b = InstanceBuilder::new(2, 1, 1);
        b.capacity(0, 1)
            .constant_price(0, 1.0)
            .candidate(0, 0, &[0.5], 0.0);
        let inst = b.build().unwrap();
        let ledger = SharedCapacityLedger::new(&inst);
        let item = ItemId(0);
        assert!(!ledger.is_scarce(item));

        ledger.charge(item, UserId(1));
        assert!(ledger.is_scarce(item)); // migrated into the window

        let mut counted = false;
        assert!(!fast_commit_claim(&ledger, &mut counted, item, UserId(0)));
        assert!(!counted, "denied fast commit must stay uncounted");
        assert_eq!(ledger.demand(item), 1, "demand retires only on a grant");
    }
}
