//! The PTIME special case of REVMAX with `T = 1` (§3.2): maximum-weight
//! degree-constrained subgraph (Max-DCS) on the user–item bipartite graph.
//!
//! Each user node has degree bound `k` (display constraint), each item node has
//! degree bound `q_i` (capacity constraint), and edge (u, i) carries weight
//! `p(i, 1) · q(u, i, 1)`. We solve it exactly by reduction to min-cost flow:
//! source → user (capacity `k`, cost 0), user → item (capacity 1, cost `−w`),
//! item → sink (capacity `q_i`, cost 0); augmenting along negative-cost
//! shortest paths until none remains yields the maximum-weight subgraph.
//!
//! This module serves two purposes: it validates the greedy algorithms on
//! single-step instances (where the optimum is computable), and it is the
//! baseline "static" optimizer a snapshot-based system would use.

use revmax_core::{Instance, Strategy, TimeStep, Triple};

/// Result of the exact `T = 1` solver.
#[derive(Debug, Clone)]
pub struct MaxDcsOutcome {
    /// The optimal single-step strategy.
    pub strategy: Strategy,
    /// Its total weight `Σ p(i, 1) · q(u, i, 1)` (equals its expected revenue,
    /// since a single step has no competition or saturation effects within a
    /// class unless two same-class items go to the same user — which the
    /// optimum never does when `k` allows avoiding it).
    pub weight: f64,
}

/// Edge in the min-cost-flow network.
#[derive(Debug, Clone, Copy)]
struct FlowEdge {
    to: usize,
    capacity: i64,
    flow: i64,
    /// Cost in fixed-point (millionths) to keep arithmetic exact.
    cost: i64,
}

/// A small successive-shortest-path min-cost-flow solver (Bellman–Ford based,
/// adequate for the instance sizes the exact solver is used on).
struct MinCostFlow {
    graph: Vec<Vec<usize>>, // adjacency: node -> edge indices
    edges: Vec<FlowEdge>,
}

impl MinCostFlow {
    fn new(nodes: usize) -> Self {
        MinCostFlow {
            graph: vec![Vec::new(); nodes],
            edges: Vec::new(),
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, capacity: i64, cost: i64) -> usize {
        let idx = self.edges.len();
        self.edges.push(FlowEdge {
            to,
            capacity,
            flow: 0,
            cost,
        });
        self.graph[from].push(idx);
        self.edges.push(FlowEdge {
            to: from,
            capacity: 0,
            flow: 0,
            cost: -cost,
        });
        self.graph[to].push(idx + 1);
        idx
    }

    /// Augments along shortest (most negative total cost) paths from `source`
    /// to `sink` while the shortest path has negative cost.
    fn run_negative_augmentation(&mut self, source: usize, sink: usize) {
        loop {
            let n = self.graph.len();
            let mut dist = vec![i64::MAX; n];
            let mut prev_edge = vec![usize::MAX; n];
            dist[source] = 0;
            // Bellman–Ford.
            for _ in 0..n {
                let mut changed = false;
                for node in 0..n {
                    if dist[node] == i64::MAX {
                        continue;
                    }
                    for &eidx in &self.graph[node] {
                        let e = self.edges[eidx];
                        if e.capacity - e.flow <= 0 {
                            continue;
                        }
                        let nd = dist[node] + e.cost;
                        if nd < dist[e.to] {
                            dist[e.to] = nd;
                            prev_edge[e.to] = eidx;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            if dist[sink] == i64::MAX || dist[sink] >= 0 {
                break;
            }
            // Find bottleneck along the path.
            let mut bottleneck = i64::MAX;
            let mut node = sink;
            while node != source {
                let eidx = prev_edge[node];
                let e = self.edges[eidx];
                bottleneck = bottleneck.min(e.capacity - e.flow);
                // The tail of edge eidx is the head of its reverse edge.
                node = self.edges[eidx ^ 1].to;
            }
            // Apply.
            let mut node = sink;
            while node != source {
                let eidx = prev_edge[node];
                self.edges[eidx].flow += bottleneck;
                self.edges[eidx ^ 1].flow -= bottleneck;
                node = self.edges[eidx ^ 1].to;
            }
        }
    }
}

const COST_SCALE: f64 = 1_000_000.0;

/// Solves the `T = 1` REVMAX instance exactly via Max-DCS.
///
/// Only the `t = 1` slice of the instance is considered; the display limit and
/// capacities are taken from the instance. Edges with zero weight are dropped.
pub fn solve_t1_exact(inst: &Instance) -> MaxDcsOutcome {
    let num_users = inst.num_users() as usize;
    let num_items = inst.num_items() as usize;
    let source = 0usize;
    let user_base = 1usize;
    let item_base = 1 + num_users;
    let sink = 1 + num_users + num_items;
    let mut mcf = MinCostFlow::new(sink + 1);

    for u in 0..num_users {
        mcf.add_edge(source, user_base + u, inst.display_limit() as i64, 0);
    }
    let mut item_connected = vec![false; num_items];
    let t1 = TimeStep(1);
    let mut edge_of_candidate = Vec::new();
    for cand in inst.candidates() {
        let user = inst.candidate_user(cand);
        let item = inst.candidate_item(cand);
        let weight = inst.candidate_prob(cand, t1) * inst.price(item, t1);
        if weight <= 0.0 {
            continue;
        }
        let cost = -(weight * COST_SCALE).round() as i64;
        let eidx = mcf.add_edge(user_base + user.index(), item_base + item.index(), 1, cost);
        edge_of_candidate.push((cand, eidx, weight));
        item_connected[item.index()] = true;
    }
    for (i, &connected) in item_connected.iter().enumerate().take(num_items) {
        if connected {
            mcf.add_edge(
                item_base + i,
                sink,
                inst.capacity(revmax_core::ItemId(i as u32)) as i64,
                0,
            );
        }
    }
    mcf.run_negative_augmentation(source, sink);

    let mut strategy = Strategy::new();
    let mut weight = 0.0;
    for (cand, eidx, w) in edge_of_candidate {
        if mcf.edges[eidx].flow > 0 {
            let z = Triple {
                user: inst.candidate_user(cand),
                item: inst.candidate_item(cand),
                t: t1,
            };
            strategy.insert(z);
            weight += w;
        }
    }
    MaxDcsOutcome { strategy, weight }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_greedy::global_greedy;
    use revmax_core::{revenue, InstanceBuilder};

    /// 2 users, 2 items, k = 1, capacities 1: a pure assignment problem.
    #[test]
    fn solves_small_assignment_optimally() {
        let mut b = InstanceBuilder::new(2, 2, 1);
        b.display_limit(1)
            .capacity(0, 1)
            .capacity(1, 1)
            .constant_price(0, 10.0)
            .constant_price(1, 10.0)
            // Weights: u0-i0: 9, u0-i1: 8, u1-i0: 7, u1-i1: 1.
            .candidate(0, 0, &[0.9], 0.0)
            .candidate(0, 1, &[0.8], 0.0)
            .candidate(1, 0, &[0.7], 0.0)
            .candidate(1, 1, &[0.1], 0.0);
        let inst = b.build().unwrap();
        let out = solve_t1_exact(&inst);
        // Greedy pairing (u0-i0, u1-i1) = 10; optimal is (u0-i1, u1-i0) = 15.
        assert!((out.weight - 15.0).abs() < 1e-6);
        assert!(out.strategy.contains(Triple::new(0, 1, 1)));
        assert!(out.strategy.contains(Triple::new(1, 0, 1)));
        assert!(out.strategy.validate(&inst).is_ok());
    }

    #[test]
    fn respects_degree_bounds() {
        let mut b = InstanceBuilder::new(3, 2, 1);
        b.display_limit(1)
            .capacity(0, 2)
            .capacity(1, 1)
            .constant_price(0, 5.0)
            .constant_price(1, 5.0);
        for u in 0..3 {
            b.candidate(u, 0, &[0.9], 0.0);
            b.candidate(u, 1, &[0.8], 0.0);
        }
        let inst = b.build().unwrap();
        let out = solve_t1_exact(&inst);
        assert!(out.strategy.validate(&inst).is_ok());
        // Item 0 can serve 2 users, item 1 one user, each user at most 1 item:
        // the best is 2 × 4.5 + 1 × 4.0 = 13.
        assert!((out.weight - 13.0).abs() < 1e-6);
        assert_eq!(out.strategy.len(), 3);
    }

    #[test]
    fn weight_equals_dynamic_revenue_for_t1() {
        // With T = 1 and k = 1 nobody gets two same-class items, so the
        // dynamic revenue equals the matching weight.
        let mut b = InstanceBuilder::new(3, 3, 1);
        b.display_limit(1);
        for i in 0..3u32 {
            b.capacity(i, 1).constant_price(i, 10.0 + i as f64);
        }
        for u in 0..3u32 {
            for i in 0..3u32 {
                b.candidate(u, i, &[0.2 + 0.1 * ((u + i) % 3) as f64], 0.0);
            }
        }
        let inst = b.build().unwrap();
        let out = solve_t1_exact(&inst);
        assert!((out.weight - revenue(&inst, &out.strategy)).abs() < 1e-9);
    }

    #[test]
    fn greedy_is_close_to_exact_on_t1_instances() {
        // The greedy heuristics have no guarantee, but on single-step
        // instances they should land within a few percent of the optimum.
        let mut b = InstanceBuilder::new(6, 5, 1);
        b.display_limit(2);
        for i in 0..5u32 {
            b.capacity(i, 3).constant_price(i, 5.0 + 3.0 * i as f64);
        }
        for u in 0..6u32 {
            for i in 0..5u32 {
                let q = 0.1 + 0.13 * ((u * 5 + i) % 7) as f64;
                b.candidate(u, i, &[q], 0.0);
            }
        }
        let inst = b.build().unwrap();
        let exact = solve_t1_exact(&inst);
        let greedy = global_greedy(&inst);
        assert!(greedy.revenue <= exact.weight + 1e-9);
        assert!(
            greedy.revenue >= 0.9 * exact.weight,
            "greedy {} too far from exact {}",
            greedy.revenue,
            exact.weight
        );
    }

    #[test]
    fn empty_instance_gives_empty_strategy() {
        let mut b = InstanceBuilder::new(2, 2, 1);
        b.display_limit(1)
            .constant_price(0, 1.0)
            .constant_price(1, 1.0);
        b.candidate(0, 0, &[0.0], 0.0);
        let inst = b.build().unwrap();
        let out = solve_t1_exact(&inst);
        assert!(out.strategy.is_empty());
        assert_eq!(out.weight, 0.0);
    }
}
