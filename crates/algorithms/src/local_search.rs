//! Local-search approximation for the relaxed problem R-REVMAX (§4.2).
//!
//! R-REVMAX keeps only the display constraint — a partition matroid over
//! (user, time) slots (Lemma 2) — and pushes the capacity constraint into the
//! objective via the effective dynamic adoption probability (Definition 4).
//! Maximizing the resulting non-negative, non-monotone submodular function
//! subject to a matroid constraint admits a `1/(4 + ε)`-approximation via the
//! local-search algorithm of Lee et al.; this module implements that algorithm
//! (add / delete / swap moves with an `ε/n⁴`-scaled improvement threshold, run
//! twice: once on the full ground set and once on the complement of the first
//! solution, returning the better of the two).
//!
//! The algorithm is intentionally only practical for small instances — that is
//! the very point the paper makes when motivating the greedy heuristics — and
//! is used here to sanity-check their quality.

use crate::exhaustive::candidate_triples;
use revmax_core::{effective_revenue, ExactPoissonBinomial, Instance, Strategy, Triple};
use std::collections::HashMap;

/// Outcome of the local-search approximation.
#[derive(Debug, Clone)]
pub struct LocalSearchOutcome {
    /// The selected strategy (satisfies the display constraint only, as in R-REVMAX).
    pub strategy: Strategy,
    /// Its R-REVMAX objective value (effective revenue).
    pub objective: f64,
    /// Number of objective evaluations performed.
    pub evaluations: u64,
}

/// The partition-matroid independence test of Lemma 2: at most `k` triples per
/// (user, time) slot.
pub fn is_display_independent(inst: &Instance, strategy: &Strategy) -> bool {
    strategy.satisfies_display(inst)
}

fn objective(inst: &Instance, s: &Strategy, evals: &mut u64) -> f64 {
    *evals += 1;
    effective_revenue(inst, s, &ExactPoissonBinomial)
}

/// One pass of approximate local search over the given ground set.
fn local_search_pass(
    inst: &Instance,
    ground: &[Triple],
    epsilon: f64,
    evals: &mut u64,
) -> (Strategy, f64) {
    let n = ground.len().max(1) as f64;
    // Improvement threshold factor from Lee et al.: (1 + ε / n⁴).
    let threshold = 1.0 + epsilon / n.powi(4);

    // Start from the best single element.
    let mut best_single: Option<(Triple, f64)> = None;
    for &z in ground {
        let mut s = Strategy::new();
        s.insert(z);
        let v = objective(inst, &s, evals);
        if best_single.as_ref().is_none_or(|&(_, bv)| v > bv) {
            best_single = Some((z, v));
        }
    }
    let Some((seed, mut current_value)) = best_single else {
        return (Strategy::new(), 0.0);
    };
    let mut current = Strategy::new();
    current.insert(seed);

    // Hard cap on iterations to stay polynomial regardless of ε.
    let max_iters = 1000 + ground.len() * ground.len();
    for _ in 0..max_iters {
        let mut improved = false;

        // Delete moves.
        for z in current.iter().collect::<Vec<_>>() {
            let mut cand = current.clone();
            cand.remove(z);
            let v = objective(inst, &cand, evals);
            if v >= threshold * current_value && v > current_value {
                current = cand;
                current_value = v;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }

        // Add moves (respecting the matroid).
        for &z in ground {
            if current.contains(z) {
                continue;
            }
            let mut cand = current.clone();
            cand.insert(z);
            if !is_display_independent(inst, &cand) {
                continue;
            }
            let v = objective(inst, &cand, evals);
            if v >= threshold * current_value && v > current_value {
                current = cand;
                current_value = v;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }

        // Swap moves: exchange one element inside for one outside.
        'swap: for inside in current.iter().collect::<Vec<_>>() {
            for &outside in ground {
                if current.contains(outside) {
                    continue;
                }
                let mut cand = current.clone();
                cand.remove(inside);
                cand.insert(outside);
                if !is_display_independent(inst, &cand) {
                    continue;
                }
                let v = objective(inst, &cand, evals);
                if v >= threshold * current_value && v > current_value {
                    current = cand;
                    current_value = v;
                    improved = true;
                    break 'swap;
                }
            }
        }
        if !improved {
            break;
        }
    }
    (current, current_value)
}

/// Runs the Lee-et-al.-style local search for R-REVMAX.
///
/// `epsilon` controls the improvement threshold (the guarantee is `1/(4+ε)`),
/// and `max_ground_set` guards against accidentally running the exponential-ish
/// procedure on a large instance.
pub fn local_search_r_revmax(
    inst: &Instance,
    epsilon: f64,
    max_ground_set: usize,
) -> LocalSearchOutcome {
    let ground = candidate_triples(inst);
    assert!(
        ground.len() <= max_ground_set,
        "local search requested for {} candidate triples (limit {max_ground_set})",
        ground.len()
    );
    let mut evals = 0u64;
    let (s1, v1) = local_search_pass(inst, &ground, epsilon, &mut evals);

    // Second pass on the complement of the first solution.
    let complement: Vec<Triple> = ground
        .iter()
        .copied()
        .filter(|z| !s1.contains(*z))
        .collect();
    let (s2, v2) = local_search_pass(inst, &complement, epsilon, &mut evals);

    if v1 >= v2 {
        LocalSearchOutcome {
            strategy: s1,
            objective: v1,
            evaluations: evals,
        }
    } else {
        LocalSearchOutcome {
            strategy: s2,
            objective: v2,
            evaluations: evals,
        }
    }
}

/// Exact optimum of the R-REVMAX objective (display constraint only) on tiny
/// instances, used to verify the approximation guarantee in tests.
pub fn exact_r_revmax_optimum(inst: &Instance, max_ground_set: usize) -> (Strategy, f64) {
    let ground = candidate_triples(inst);
    assert!(ground.len() <= max_ground_set);
    let mut best = (Strategy::new(), 0.0);
    let mut evals = 0u64;
    for mask in 0u64..(1u64 << ground.len()) {
        let mut s = Strategy::with_capacity(mask.count_ones() as usize);
        for (idx, &z) in ground.iter().enumerate() {
            if mask & (1 << idx) != 0 {
                s.insert(z);
            }
        }
        if !is_display_independent(inst, &s) {
            continue;
        }
        let v = objective(inst, &s, &mut evals);
        if v > best.1 {
            best = (s, v);
        }
    }
    best
}

/// Groups a strategy's triples per (user, time) slot — a helper for matroid
/// related assertions and experiment reporting.
pub fn slot_occupancy(strategy: &Strategy) -> HashMap<(u32, u32), usize> {
    let mut occ: HashMap<(u32, u32), usize> = HashMap::new();
    for z in strategy.iter() {
        *occ.entry((z.user.0, z.t.value())).or_insert(0) += 1;
    }
    occ
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::InstanceBuilder;

    fn small_instance() -> Instance {
        let mut b = InstanceBuilder::new(2, 2, 2);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .beta(0, 0.3)
            .beta(1, 0.7)
            .capacity(0, 1)
            .capacity(1, 1)
            .prices(0, &[20.0, 16.0])
            .prices(1, &[8.0, 11.0])
            .candidate(0, 0, &[0.6, 0.7], 0.0)
            .candidate(0, 1, &[0.5, 0.4], 0.0)
            .candidate(1, 0, &[0.3, 0.5], 0.0)
            .candidate(1, 1, &[0.6, 0.2], 0.0);
        b.build().unwrap()
    }

    #[test]
    fn local_search_respects_the_matroid_and_the_guarantee() {
        let inst = small_instance();
        let out = local_search_r_revmax(&inst, 0.5, 20);
        assert!(is_display_independent(&inst, &out.strategy));
        assert!(out.objective > 0.0);
        let (_, opt) = exact_r_revmax_optimum(&inst, 20);
        // Guarantee is 1/(4+ε); in practice local search lands far closer.
        assert!(
            out.objective >= opt / (4.0 + 0.5) - 1e-9,
            "local search {} below the 1/(4+ε) bound of optimum {}",
            out.objective,
            opt
        );
        assert!(out.objective <= opt + 1e-9);
    }

    #[test]
    fn local_search_finds_the_single_best_element_at_least() {
        let inst = small_instance();
        let out = local_search_r_revmax(&inst, 0.5, 20);
        let best_single = candidate_triples(&inst)
            .into_iter()
            .map(|z| {
                let mut s = Strategy::new();
                s.insert(z);
                effective_revenue(&inst, &s, &ExactPoissonBinomial)
            })
            .fold(0.0, f64::max);
        assert!(out.objective + 1e-9 >= best_single);
    }

    #[test]
    fn slot_occupancy_counts_per_user_time() {
        let mut s = Strategy::new();
        s.insert(Triple::new(0, 0, 1));
        s.insert(Triple::new(0, 1, 1));
        s.insert(Triple::new(1, 0, 2));
        let occ = slot_occupancy(&s);
        assert_eq!(occ[&(0, 1)], 2);
        assert_eq!(occ[&(1, 2)], 1);
    }

    #[test]
    fn evaluation_counter_reflects_the_expense() {
        let inst = small_instance();
        let out = local_search_r_revmax(&inst, 0.5, 20);
        // The whole point of §4.2: even on a toy instance, local search needs
        // far more objective evaluations than the greedy's handful of marginals.
        assert!(out.evaluations > 20);
    }

    #[test]
    #[should_panic(expected = "local search requested")]
    fn refuses_large_ground_sets() {
        let inst = small_instance();
        let _ = local_search_r_revmax(&inst, 0.5, 2);
    }
}
