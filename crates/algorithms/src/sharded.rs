//! The shard-partitioned planning core.
//!
//! The REVMAX objective decomposes per user — memory, saturation, and
//! competition all act inside one user's (user, class) groups — and the
//! display constraint is per (user, time). The *only* cross-user coupling is
//! item capacity. This module partitions the users into CSR-aligned shards
//! ([`shard_users`]), gives each shard its own engine view
//! ([`revmax_core::RevenueEngine::for_shard`]), candidate table, and heap,
//! and couples the shards exclusively through a [`SharedCapacityLedger`].
//!
//! # Determinism: value-ordered claim arbitration
//!
//! Capacity claims are *order-sensitive*: the sequential greedy grants an
//! item's last capacity unit to whichever candidate surfaces first, i.e. in
//! descending marginal-revenue order. A free-running optimistic shard race
//! would grant claims in scheduler order — nondeterministic and generally
//! different from the sequential plan. (Empirically this matters: on
//! `amazon_like().scaled(0.02)` the sequential G-Greedy plan ends with
//! roughly half of all items exactly at capacity.)
//!
//! The coordinator therefore performs a *deterministic reconciliation* of
//! the shard frontiers. Every shard keeps its best pending move **pre-popped
//! out of its heap** in a held slot, so the coordinator's arbitration is a
//! scan over plain `(value, candidate id)` pairs: it repeatedly advances the
//! shard whose held move is globally maximal (ties towards the smaller
//! candidate id — the same total order as the sequential heap), and that
//! shard then refreshes its held move with exactly one heap
//! update-or-remove plus one pop — the identical heap traffic the
//! sequential driver pays per step. Capacity is claimed through the shared
//! ledger at the moment a move is committed, so claims are granted in
//! exactly the order the sequential run grants them, independent of thread
//! scheduling.
//!
//! The sharded plan is consequently not merely "close": the selection
//! sequence is identical triple for triple, and the reported revenue is the
//! same fold of the same realised marginals (engine marginals are
//! bit-identical because each user's group state only depends on that
//! user's own picks). The engine-parity suite asserts agreement with the
//! sequential flat plan to `1e-9` at 1, 2, and 7 shards, for both engines.
//!
//! What the shards buy, given the arbitration itself is sequential:
//!
//! * **near-free coordination** — the held-move rotation keeps per-step heap
//!   work identical to the sequential driver, with per-shard heaps
//!   `shards`× smaller;
//! * **construction parallelism** — shard engines and tables are built
//!   concurrently by scoped workers when hardware parallelism is available
//!   (bit-identical to the sequential build, which the tests assert);
//! * **bounded per-worker memory** — every per-candidate structure is
//!   `O(shard)`, the flat engine's shard view included;
//! * **a serving boundary** — `revmax-serve` keeps shard workers alive
//!   across requests and plans batches of instances over the same pool.
//!
//! The eager (`lazy_forward: false`) ablation stamps flags with the shard's
//! own selection count rather than the global one; a cross-shard insertion
//! cannot change another shard's marginals, so re-evaluations that the
//! sequential eager run performs and a shard skips return the value already
//! cached — the selected plan is identical, only `marginal_evaluations`
//! differs.

use crate::config::PlannerConfig;
use crate::global_greedy::{
    collect_stale_run, make_engine, refresh_stale_run, CandidateTable, ConcurrencyStats,
    EngineKind, GreedyOutcome, StaleMember,
};
use crate::heap::{precedes, refresh_held, GreedyHeap, HeapKind, IndexedDaryHeap, LazyMaxHeap};
use crate::par;
use crate::protocol;
use revmax_core::{
    revenue, CandidateId, HashIncrementalRevenue, IncrementalRevenue, Instance, ItemId,
    ResidualDelta, RevenueEngine, SharedCapacityLedger, Strategy, TimeStep, Triple, UserId,
    UserShard,
};
use std::sync::{Condvar, Mutex};

/// Cuts the instance into at most `pieces` user shards whose candidate ranges
/// are balanced (boundaries drawn from the CSR offsets, see
/// [`par::balanced_cuts`]). Always covers every user; trailing users without
/// candidates land in the last shard.
pub fn shard_users(inst: &Instance, pieces: usize) -> Vec<UserShard> {
    let offsets = inst.user_cand_offsets();
    let cuts = par::balanced_cuts(offsets, pieces.max(1));
    let mut user_bounds = vec![0u32];
    for &c in &cuts[1..cuts.len().saturating_sub(1)] {
        let u = offsets.partition_point(|&o| (o as usize) < c) as u32;
        user_bounds.push(u);
    }
    user_bounds.push(inst.num_users());
    user_bounds.dedup();
    user_bounds
        .windows(2)
        .map(|w| inst.user_shard(w[0], w[1]))
        .collect()
}

/// What one arbitration step did.
enum Step {
    /// A triple was committed; `marginal` is its realised marginal revenue.
    Inserted { z: Triple, marginal: f64 },
    /// Bookkeeping only (slot blocked, candidate retired, or re-evaluated).
    Continue,
}

/// What one free-running concurrent step did.
enum CStep {
    /// A triple was committed lock-free; `marginal` is its realised marginal.
    Inserted { z: Triple, marginal: f64 },
    /// Bookkeeping only (slot blocked, candidate retired, or re-evaluated).
    Continue,
    /// The held move reached a scarce-window commit point and parked as a
    /// proposal for the coordinator. The shard's state is untouched (the
    /// held move stays held, the engine is not mutated); `t_idx` is the
    /// commit's time-step index and `granted` whether the speculative claim
    /// won a capacity unit.
    Park { t_idx: usize, granted: bool },
}

/// One shard's planning state for the two-level G-Greedy.
///
/// The shard's best pending move lives *outside* the heap, pre-popped into
/// `held`; see the module docs for why this makes arbitration free.
struct GreedyShard<'a, E, H> {
    shard: UserShard,
    inc: E,
    table: CandidateTable,
    heap: H,
    /// The shard's best pending move `(local candidate, root value)`,
    /// popped out of `heap`; `None` when the shard is exhausted.
    held: Option<(u32, f64)>,
    /// Shard-local per-candidate flag: (user, item) pair already claimed in
    /// the shared ledger.
    counted: Vec<bool>,
    /// Scratch for batched refresh bursts (`PlannerConfig::kernel_batch`).
    run: Vec<StaleMember>,
    _inst: std::marker::PhantomData<&'a ()>,
}

impl<'a, E: RevenueEngine<'a>, H: GreedyHeap> GreedyShard<'a, E, H> {
    fn new(
        inst: &'a Instance,
        cfg: &PlannerConfig,
        shard: UserShard,
        parallel: bool,
        delta: Option<&ResidualDelta>,
    ) -> Self {
        let inc: E = make_engine(inst, cfg.ignores_saturation(), shard, cfg, delta);
        let table = CandidateTable::for_range(inst, shard.cand_start(), shard.cand_end(), parallel);
        let n = shard.num_candidates();
        let mut roots = vec![f64::NEG_INFINITY; n];
        for local in 0..n as u32 {
            roots[local as usize] = table.best(local).map_or(f64::NEG_INFINITY, |(_, v)| v);
        }
        let mut heap = H::build(&roots);
        let held = heap.pop();
        GreedyShard {
            shard,
            inc,
            table,
            heap,
            held,
            counted: vec![false; n],
            run: Vec::with_capacity(cfg.kernel_batch as usize),
            _inst: std::marker::PhantomData,
        }
    }

    /// The shard's best pending move as `(global candidate id, value)` —
    /// a plain field read, no heap access.
    #[inline]
    fn root(&self) -> Option<(u32, f64)> {
        self.held
            .map(|(local, v)| (self.shard.cand_start() + local, v))
    }

    /// Executes one pop-to-resolution of the two-level greedy on the held
    /// move: the exact body the sequential driver runs, with capacity read
    /// from (and claimed against) the shared ledger instead of the engine.
    /// Ends by refreshing the held move (one heap update-or-remove plus one
    /// pop — the same heap traffic as a sequential step).
    ///
    /// The caller must have verified that the held move leads globally.
    fn step(
        &mut self,
        inst: &'a Instance,
        cfg: &PlannerConfig,
        ledger: &SharedCapacityLedger,
        evals: &mut u64,
    ) -> Step {
        let (local_idx, _) = self.held.expect("step requires a held move");
        let cand = CandidateId(self.shard.cand_start() + local_idx);
        let item = inst.candidate_item(cand);
        let user = inst.candidate_user(cand);

        // Drain display-dead slots in one visit (see the sequential driver
        // for why this commutes); capacity exhaustion retires the candidate.
        let mut outcome = Step::Continue;
        let mut requeue: Option<f64> = None;
        let mut blocked_any = false;
        // Loop ends with `requeue == None` when the candidate is fully dead
        // or retired by capacity.
        while let Some((best_t, best_v)) = self.table.best(local_idx) {
            let t = TimeStep::from_index(best_t);
            let display_bad = self.inc.would_violate_display_cand(cand, t);
            let capacity_bad =
                protocol::claim_blocked(ledger, self.counted[local_idx as usize], item, user);
            if display_bad {
                // The (user, t) slot is full: this time step is dead for
                // this candidate, other time steps may still be fine.
                self.table.block(local_idx, best_t);
                blocked_any = true;
                continue;
            }
            if capacity_bad {
                break; // retired: capacity exhausted by other users
            }
            if blocked_any {
                // Something was blocked: re-queue at the new best, never
                // process immediately (matches the sequential driver's
                // one-block-per-pop-equivalent behaviour).
                requeue = Some(best_v);
                break;
            }

            let stamp = if cfg.lazy_forward {
                self.inc.group_size_cand(cand) as u32
            } else {
                self.inc.len() as u32
            };
            let slot = self.table.slot(local_idx, best_t);
            if self.table.flags[slot] == stamp {
                let marginal = self.inc.insert_cand(cand, t);
                let granted = protocol::commit_claim(
                    ledger,
                    &mut self.counted[local_idx as usize],
                    item,
                    user,
                );
                debug_assert!(granted, "arbitrated claim must never be denied");
                self.table.block(local_idx, best_t);
                outcome = Step::Inserted {
                    z: Triple { user, item, t },
                    marginal,
                };
            } else {
                *evals += self.table.reevaluate(&self.inc, local_idx, cand, stamp);
                if cfg.kernel_batch >= 2 {
                    // Batched refresh: the run of stale tops of this shard's
                    // own heap is refreshed in the same kernel-grouped burst
                    // (the held move keeps its scalar refresh above — the
                    // extras ride along). Burst refreshes are value-neutral
                    // bookkeeping on the members' own groups, so arbitration
                    // — which only reads held moves — is unaffected.
                    let start = self.shard.cand_start();
                    let counted = &self.counted;
                    self.run.clear();
                    collect_stale_run(
                        &self.inc,
                        &mut self.table,
                        &mut self.heap,
                        start,
                        cfg.lazy_forward,
                        |inc: &E, c, tt| {
                            inc.would_violate_display_cand(c, tt)
                                || protocol::claim_blocked(
                                    ledger,
                                    counted[(c.0 - start) as usize],
                                    inst.candidate_item(c),
                                    inst.candidate_user(c),
                                )
                        },
                        &mut self.run,
                        cfg.kernel_batch as usize - 1,
                    );
                    *evals += refresh_stale_run(
                        &self.inc,
                        &mut self.table,
                        &mut self.heap,
                        start,
                        &mut self.run,
                    );
                }
            }
            requeue = self.table.best(local_idx).map(|(_, v)| v);
            break;
        }

        self.held = refresh_held(&mut self.heap, local_idx, requeue);
        outcome
    }

    /// The concurrent-executor counterpart of [`GreedyShard::step`]: the
    /// same pop-to-resolution body, with three differences mandated by the
    /// scarcity-window protocol (`docs/concurrency.md`, "The capacity
    /// window"):
    ///
    /// * capacity gates read the **committed** count
    ///   ([`protocol::claim_blocked_committed`]) — a speculative unit held
    ///   by a parked proposal may still be stolen by a sequentially earlier
    ///   claim, so retiring a candidate against the raw count would be
    ///   premature;
    /// * commits are routed by the window: counted, exempt, and abundant
    ///   moves commit lock-free ([`protocol::fast_commit_claim`]);
    ///   scarce-window moves claim speculatively and **park** — the method
    ///   returns [`CStep::Park`] with the shard untouched, and the caller
    ///   resumes via [`GreedyShard::apply_admit`] /
    ///   [`GreedyShard::apply_reject`] once the coordinator rules;
    /// * a candidate dying without a claim retires its demand so the
    ///   window can shrink behind it.
    fn step_concurrent(
        &mut self,
        inst: &'a Instance,
        cfg: &PlannerConfig,
        ledger: &SharedCapacityLedger,
        evals: &mut u64,
    ) -> CStep {
        let (local_idx, _) = self.held.expect("step requires a held move");
        let cand = CandidateId(self.shard.cand_start() + local_idx);
        let item = inst.candidate_item(cand);
        let user = inst.candidate_user(cand);

        let mut outcome = CStep::Continue;
        let mut requeue: Option<f64> = None;
        let mut blocked_any = false;
        while let Some((best_t, best_v)) = self.table.best(local_idx) {
            let t = TimeStep::from_index(best_t);
            let display_bad = self.inc.would_violate_display_cand(cand, t);
            let capacity_bad = protocol::claim_blocked_committed(
                ledger,
                self.counted[local_idx as usize],
                item,
                user,
            );
            if display_bad {
                self.table.block(local_idx, best_t);
                blocked_any = true;
                continue;
            }
            if capacity_bad {
                break; // retired: capacity committed-exhausted by other users
            }
            if blocked_any {
                requeue = Some(best_v);
                break;
            }

            let stamp = if cfg.lazy_forward {
                self.inc.group_size_cand(cand) as u32
            } else {
                self.inc.len() as u32
            };
            let slot = self.table.slot(local_idx, best_t);
            if self.table.flags[slot] == stamp {
                // Commit point: route by the capacity window.
                let counted = self.counted[local_idx as usize];
                if !counted && !ledger.is_exempt(item, user) && ledger.is_scarce(item) {
                    let granted = protocol::speculative_claim(ledger, item, user);
                    return CStep::Park {
                        t_idx: best_t,
                        granted,
                    };
                }
                if protocol::fast_commit_claim(
                    ledger,
                    &mut self.counted[local_idx as usize],
                    item,
                    user,
                ) {
                    let marginal = self.inc.insert_cand(cand, t);
                    self.table.block(local_idx, best_t);
                    outcome = CStep::Inserted {
                        z: Triple { user, item, t },
                        marginal,
                    };
                } else {
                    // The abundance check raced a `charge`: the item
                    // migrated into the window between the check and the
                    // claim. Park ungranted — no free-running thread can
                    // release a unit (releases are barrier-quiescent), so
                    // retrying the claim here could never succeed.
                    return CStep::Park {
                        t_idx: best_t,
                        granted: false,
                    };
                }
            } else {
                *evals += self.table.reevaluate(&self.inc, local_idx, cand, stamp);
                if cfg.kernel_batch >= 2 {
                    let start = self.shard.cand_start();
                    let counted = &self.counted;
                    self.run.clear();
                    collect_stale_run(
                        &self.inc,
                        &mut self.table,
                        &mut self.heap,
                        start,
                        cfg.lazy_forward,
                        |inc: &E, c, tt| {
                            inc.would_violate_display_cand(c, tt)
                                || protocol::claim_blocked_committed(
                                    ledger,
                                    counted[(c.0 - start) as usize],
                                    inst.candidate_item(c),
                                    inst.candidate_user(c),
                                )
                        },
                        &mut self.run,
                        cfg.kernel_batch as usize - 1,
                    );
                    *evals += refresh_stale_run(
                        &self.inc,
                        &mut self.table,
                        &mut self.heap,
                        start,
                        &mut self.run,
                    );
                }
            }
            requeue = self.table.best(local_idx).map(|(_, v)| v);
            break;
        }

        // Window bookkeeping: a candidate dying without a claim (capacity
        // retirement or display-drain exhaustion) retires its demand.
        if requeue.is_none() && !self.counted[local_idx as usize] && !ledger.is_exempt(item, user) {
            protocol::retire_candidate(ledger, item, user);
        }
        self.held = refresh_held(&mut self.heap, local_idx, requeue);
        outcome
    }

    /// Applies an `Admitted` verdict to the parked held move: exactly the
    /// insertion the sequential commit would have performed — the shard's
    /// state did not move between park and verdict (the drain loop stopped
    /// at this commit point with fresh flags, and nothing shard-local
    /// changes while parked), so the table still reports the parked slot as
    /// best. The ledger side (claim, demand) was already settled by the
    /// coordinator.
    fn apply_admit(&mut self, inst: &'a Instance, t_idx: usize) -> (Triple, f64) {
        let (local_idx, _) = self.held.expect("verdict requires a held move");
        let cand = CandidateId(self.shard.cand_start() + local_idx);
        let item = inst.candidate_item(cand);
        let user = inst.candidate_user(cand);
        let t = TimeStep::from_index(t_idx);
        let marginal = self.inc.insert_cand(cand, t);
        self.counted[local_idx as usize] = true;
        self.table.block(local_idx, t_idx);
        let requeue = self.table.best(local_idx).map(|(_, v)| v);
        self.held = refresh_held(&mut self.heap, local_idx, requeue);
        (Triple { user, item, t }, marginal)
    }

    /// Applies a `Rejected` verdict: the item is committed-full for this
    /// pair, so the candidate is retired exactly as a sequential capacity
    /// gate would retire it (the coordinator already rolled back the
    /// speculative claim and retired the demand).
    fn apply_reject(&mut self) {
        let (local_idx, _) = self.held.expect("verdict requires a held move");
        self.held = refresh_held(&mut self.heap, local_idx, None);
    }
}

/// Runs G-Greedy on the shard-partitioned core with `pieces` user shards —
/// the explicit-piece-count entry behind `plan` with `shards ≥ 2`.
///
/// Produces the same plan as the sequential driver (see the module docs);
/// `cfg.shards` is ignored in favour of the explicit `pieces`, and the
/// two-level heap layout is always used. The returned strategy's insertion
/// order is the coordinator order, i.e. the sequential selection order.
pub fn sharded_plan(inst: &Instance, cfg: &PlannerConfig, pieces: usize) -> GreedyOutcome {
    sharded_plan_residual(inst, cfg, pieces, None)
}

/// [`sharded_plan`] for a residual replan: `delta` (with
/// `cfg.warm_start`) warm-starts each shard engine from the session's
/// snapshot pool. `None` is a one-shot (cold) plan.
pub fn sharded_plan_residual(
    inst: &Instance,
    cfg: &PlannerConfig,
    pieces: usize,
    delta: Option<&ResidualDelta>,
) -> GreedyOutcome {
    use HeapKind::{IndexedDary, Lazy};
    type FlatEng<'i> = IncrementalRevenue<'i>;
    type HashEng<'i> = HashIncrementalRevenue<'i>;
    match (cfg.engine, cfg.heap) {
        (EngineKind::Flat, Lazy) => {
            sharded_global_greedy_impl::<FlatEng<'_>, LazyMaxHeap>(inst, cfg, pieces, delta)
        }
        (EngineKind::Flat, IndexedDary) => {
            sharded_global_greedy_impl::<FlatEng<'_>, IndexedDaryHeap>(inst, cfg, pieces, delta)
        }
        (EngineKind::Hash, Lazy) => {
            sharded_global_greedy_impl::<HashEng<'_>, LazyMaxHeap>(inst, cfg, pieces, delta)
        }
        (EngineKind::Hash, IndexedDary) => {
            sharded_global_greedy_impl::<HashEng<'_>, IndexedDaryHeap>(inst, cfg, pieces, delta)
        }
    }
}

/// Runs G-Greedy on the shard-partitioned core with `pieces` user shards.
#[deprecated(
    since = "0.2.0",
    note = "use sharded_plan with a PlannerConfig; removal scheduled for 0.4.0"
)]
#[allow(deprecated)]
pub fn sharded_global_greedy(
    inst: &Instance,
    opts: &crate::global_greedy::GreedyOptions,
    pieces: usize,
) -> GreedyOutcome {
    sharded_plan(inst, &PlannerConfig::from(*opts), pieces)
}

fn sharded_global_greedy_impl<'a, E: RevenueEngine<'a>, H: GreedyHeap>(
    inst: &'a Instance,
    cfg: &PlannerConfig,
    pieces: usize,
    delta: Option<&ResidualDelta>,
) -> GreedyOutcome {
    let shards = shard_users(inst, pieces);
    let threads = cfg.effective_shard_threads(shards.len());
    if threads >= 2 {
        return sharded_concurrent_impl::<E, H>(inst, cfg, shards, delta, threads);
    }
    let single = shards.len() == 1;
    let ledger = SharedCapacityLedger::new(inst);
    let mut workers: Vec<GreedyShard<'a, E, H>> = par::scoped_map(
        shards,
        |shard| GreedyShard::new(inst, cfg, shard, single && cfg.parallel_init(), delta),
        cfg.parallel_init(),
    );

    let total_slots = inst.total_slots();
    let mut selected: u64 = 0;
    let mut running_revenue = 0.0f64;
    // Selections in coordinator (= sequential) order; folded into a Strategy
    // after the loop so the hot path pays a plain push, not a hash insert.
    let mut picks: Vec<Triple> = Vec::new();
    let mut trace = Vec::new();
    let mut evals: u64 = 0;

    'arbitrate: while selected < total_slots {
        // Deterministic arbitration over the held moves: advance the shard
        // whose move is globally maximal (ties to the smaller candidate id).
        let mut best: Option<(usize, f64, u32)> = None;
        let mut runner_up: Option<(f64, u32)> = None;
        for (wi, w) in workers.iter().enumerate() {
            if let Some((cand, v)) = w.root() {
                if best.is_none_or(|(_, bv, bc)| precedes((v, cand), (bv, bc))) {
                    runner_up = best.map(|(_, bv, bc)| (bv, bc));
                    best = Some((wi, v, cand));
                } else if runner_up.is_none_or(|ru| precedes((v, cand), ru)) {
                    runner_up = Some((v, cand));
                }
            }
        }
        let Some((wi, value, _)) = best else {
            break;
        };
        if value <= 0.0 {
            break;
        }
        // Advance the leading shard for as long as its held move stays the
        // global leader: its steps only change its own held move, so
        // consecutive selections from one shard replay the sequential order
        // exactly while the leadership re-check is two register compares.
        loop {
            if let Step::Inserted { z, marginal } = workers[wi].step(inst, cfg, &ledger, &mut evals)
            {
                running_revenue += marginal;
                picks.push(z);
                selected += 1;
                if cfg.track_trace {
                    trace.push(running_revenue);
                }
                if selected >= total_slots {
                    break 'arbitrate;
                }
            }
            let Some((cand, v)) = workers[wi].root() else {
                continue 'arbitrate;
            };
            if v <= 0.0 {
                continue 'arbitrate;
            }
            if !runner_up.is_none_or(|ru| precedes((v, cand), ru)) {
                continue 'arbitrate;
            }
        }
    }

    // Release the shard engines through into_strategy so warm-started ones
    // return their recycled buffers to the session's snapshot pool.
    for w in workers {
        let _ = w.inc.into_strategy();
    }

    let mut strategy = Strategy::with_capacity(picks.len());
    for z in picks {
        strategy.insert(z);
    }
    let selection_objective = running_revenue;
    let true_revenue = if cfg.ignores_saturation() {
        revenue(inst, &strategy)
    } else {
        selection_objective
    };
    GreedyOutcome {
        strategy,
        revenue: true_revenue,
        selection_objective,
        trace,
        marginal_evaluations: evals,
        concurrency: Default::default(),
    }
}

/// A scarce-window move parked for coordinator arbitration.
#[derive(Clone, Copy)]
struct Proposal {
    /// The held root value at the commit point (fresh — the drain loop only
    /// parks when the flags stamp matches).
    value: f64,
    /// Global candidate id (the arbitration tie-break, identical to the
    /// sequential heap order).
    cand: u32,
    item: ItemId,
    user: UserId,
    /// Time-step index of the parked commit.
    t_idx: usize,
    /// Whether the speculative claim won a unit (may be stolen while
    /// parked).
    granted: bool,
}

/// Where one shard stands in the park/verdict cycle.
#[derive(Clone, Copy)]
enum Phase {
    /// Free-running on its worker (or having a verdict applied).
    Running,
    /// Parked at a scarce-window commit, awaiting the coordinator.
    Parked(Proposal),
    /// The coordinator ruled; the owning worker picks this up, applies it,
    /// and resumes the shard.
    Verdict { t_idx: usize, admitted: bool },
    /// The shard drained (no pending move with positive value).
    Done,
}

/// The coordinator/worker shared state: one [`Phase`] per shard, guarded by
/// a mutex with two condvars (`to_coord` fires on park/done transitions,
/// `to_workers` on verdicts). All cross-thread synchronisation of the
/// executor flows through this lock and the ledger — no further atomics.
struct CoordState {
    phases: Vec<Phase>,
}

/// Per-shard results accumulated by the owning worker.
struct ShardRun {
    picks: Vec<Triple>,
    revenue: f64,
    evals: u64,
    fast: u64,
    arbitrated: u64,
    rejected: u64,
}

/// The concurrent shard executor: shards free-run on a persistent scoped
/// worker pool ([`par::scoped_pool`]), committing abundant claims lock-free
/// and parking scarce-window moves as proposals; the coordinator (the
/// calling thread) waits for the full barrier — every shard parked or done
/// — then resolves the globally maximal proposal by [`precedes`], exactly
/// the sequential arbitration order. See the module docs and
/// `docs/concurrency.md` ("The capacity window") for the parity argument;
/// the plan is identical to the sequential driver's, and the reported
/// revenue agrees to float re-association (the parity suite asserts 1e-9).
///
/// Differences from the sequential loop that are plan-neutral:
///
/// * the `total_slots` early-stop is not taken — once every (user, time)
///   slot is filled, every remaining candidate is display-blocked and
///   drains to retirement without committing;
/// * the trace is not recorded (`track_trace` forces the sequential path);
/// * revenue is folded per shard in shard-index order rather than in
///   selection order (same addend multiset).
fn sharded_concurrent_impl<'a, E: RevenueEngine<'a>, H: GreedyHeap>(
    inst: &'a Instance,
    cfg: &PlannerConfig,
    shards: Vec<UserShard>,
    delta: Option<&ResidualDelta>,
    threads: usize,
) -> GreedyOutcome {
    let nshards = shards.len();
    let ledger = SharedCapacityLedger::new(inst);
    let state = Mutex::new(CoordState {
        phases: vec![Phase::Running; nshards],
    });
    let to_coord = Condvar::new();
    let to_workers = Condvar::new();
    let shard_descs = &shards;

    let worker = |tid: usize| -> Vec<(usize, GreedyShard<'a, E, H>, ShardRun)> {
        // Worker `tid` owns shards `i` with `i % threads == tid`; it builds
        // them (construction parallelism rides on the pool itself) and
        // free-runs each to its next park or to exhaustion.
        let mut owned: Vec<(usize, GreedyShard<'a, E, H>, ShardRun)> = (0..nshards)
            .filter(|i| i % threads == tid)
            .map(|i| {
                (
                    i,
                    GreedyShard::new(inst, cfg, shard_descs[i], false, delta),
                    ShardRun {
                        picks: Vec::new(),
                        revenue: 0.0,
                        evals: 0,
                        fast: 0,
                        arbitrated: 0,
                        rejected: 0,
                    },
                )
            })
            .collect();

        const READY: u8 = 0;
        const WAITING: u8 = 1;
        const FINISHED: u8 = 2;
        let mut status = vec![READY; owned.len()];
        let mut verdicts: Vec<(usize, usize, bool)> = Vec::new();
        loop {
            for k in 0..owned.len() {
                if status[k] != READY {
                    continue;
                }
                let (si, sh, run) = &mut owned[k];
                loop {
                    let exhausted = match sh.root() {
                        None => true,
                        Some((_, v)) => v <= 0.0,
                    };
                    if exhausted {
                        status[k] = FINISHED;
                        state.lock().expect("executor state mutex poisoned").phases[*si] =
                            Phase::Done;
                        to_coord.notify_one();
                        break;
                    }
                    match sh.step_concurrent(inst, cfg, &ledger, &mut run.evals) {
                        CStep::Inserted { z, marginal } => {
                            run.revenue += marginal;
                            run.picks.push(z);
                            run.fast += 1;
                        }
                        CStep::Continue => {}
                        CStep::Park { t_idx, granted } => {
                            let (cand, value) = sh.root().expect("parked move is held");
                            let cid = CandidateId(cand);
                            status[k] = WAITING;
                            state.lock().expect("executor state mutex poisoned").phases[*si] =
                                Phase::Parked(Proposal {
                                    value,
                                    cand,
                                    item: inst.candidate_item(cid),
                                    user: inst.candidate_user(cid),
                                    t_idx,
                                    granted,
                                });
                            to_coord.notify_one();
                            break;
                        }
                    }
                }
            }
            if status.iter().all(|&s| s == FINISHED) {
                break;
            }
            // All owned shards parked (or finished): sleep until the
            // coordinator rules on at least one of ours. Marking the phase
            // `Running` under the same lock keeps the coordinator's barrier
            // predicate exact.
            let mut st = state.lock().expect("executor state mutex poisoned");
            loop {
                for (k, (si, _, _)) in owned.iter().enumerate() {
                    if status[k] == WAITING {
                        if let Phase::Verdict { t_idx, admitted } = st.phases[*si] {
                            st.phases[*si] = Phase::Running;
                            status[k] = READY;
                            verdicts.push((k, t_idx, admitted));
                        }
                    }
                }
                if !verdicts.is_empty() {
                    break;
                }
                st = to_workers.wait(st).expect("executor state mutex poisoned");
            }
            drop(st);
            for (k, t_idx, admitted) in verdicts.drain(..) {
                let (_, sh, run) = &mut owned[k];
                run.arbitrated += 1;
                if admitted {
                    let (z, marginal) = sh.apply_admit(inst, t_idx);
                    run.revenue += marginal;
                    run.picks.push(z);
                } else {
                    sh.apply_reject();
                    run.rejected += 1;
                }
            }
        }
        owned
    };

    let coordinator = || {
        let mut st = state.lock().expect("executor state mutex poisoned");
        loop {
            // Full barrier: wait until every shard is parked or done.
            while st
                .phases
                .iter()
                .any(|p| matches!(p, Phase::Running | Phase::Verdict { .. }))
            {
                st = to_coord.wait(st).expect("executor state mutex poisoned");
            }
            // Admit the globally maximal proposal — the sequential next
            // scarce commit (each park is its owner's maximal pending move,
            // and fast-path commits are order-insensitive).
            let mut best: Option<(usize, f64, u32)> = None;
            for (i, p) in st.phases.iter().enumerate() {
                if let Phase::Parked(pr) = p {
                    if best.is_none_or(|(_, bv, bc)| precedes((pr.value, pr.cand), (bv, bc))) {
                        best = Some((i, pr.value, pr.cand));
                    }
                }
            }
            let Some((wi, _, _)) = best else {
                break; // every shard Done
            };
            let Phase::Parked(pr) = st.phases[wi] else {
                unreachable!("best proposal is parked");
            };
            let admitted = if pr.granted {
                // A granted proposal is always admissible: its own unit is
                // excluded from the committed count.
                protocol::admit_granted(&ledger, pr.item, pr.user);
                true
            } else {
                loop {
                    if protocol::admit_claim(&ledger, pr.item, pr.user) {
                        break true;
                    }
                    // Raw count full: steal from the sequentially *last*
                    // granted victim on the same item, then retry (the
                    // barrier guarantees quiescence for the release).
                    let mut victim: Option<(usize, f64, u32)> = None;
                    for (j, q) in st.phases.iter().enumerate() {
                        if j == wi {
                            continue;
                        }
                        if let Phase::Parked(qp) = q {
                            if qp.granted
                                && qp.item == pr.item
                                && victim.is_none_or(|(_, vv, vc)| {
                                    precedes((vv, vc), (qp.value, qp.cand))
                                })
                            {
                                victim = Some((j, qp.value, qp.cand));
                            }
                        }
                    }
                    match victim {
                        Some((j, _, _)) => {
                            protocol::steal_speculative(&ledger, pr.item);
                            if let Phase::Parked(ref mut qp) = st.phases[j] {
                                qp.granted = false;
                            }
                        }
                        None => {
                            // Committed-full with no speculative unit left
                            // to steal: the sequential run would gate this
                            // candidate here.
                            protocol::reject_claim(&ledger, pr.item, pr.user);
                            break false;
                        }
                    }
                }
            };
            st.phases[wi] = Phase::Verdict {
                t_idx: pr.t_idx,
                admitted,
            };
            to_workers.notify_all();
        }
    };

    let (worker_outs, ()) = par::scoped_pool(threads, worker, coordinator);

    // Reassemble in shard-index order so the outcome is deterministic for a
    // fixed configuration regardless of scheduling.
    let mut per_shard: Vec<Option<(GreedyShard<'a, E, H>, ShardRun)>> =
        (0..nshards).map(|_| None).collect();
    for out in worker_outs {
        for (si, sh, run) in out {
            per_shard[si] = Some((sh, run));
        }
    }
    let mut picks: Vec<Triple> = Vec::new();
    let mut running_revenue = 0.0f64;
    let mut evals: u64 = 0;
    let mut stats = ConcurrencyStats {
        worker_threads: threads as u32,
        ..Default::default()
    };
    for slot in per_shard {
        let (sh, run) = slot.expect("every shard owned by exactly one worker");
        running_revenue += run.revenue;
        evals += run.evals;
        stats.fast_path_moves += run.fast;
        stats.arbitrated_moves += run.arbitrated;
        stats.rejected_moves += run.rejected;
        picks.extend(run.picks);
        // Release through into_strategy on the calling thread so
        // warm-started engines return their buffers to the session pool
        // without concurrent pool access.
        let _ = sh.inc.into_strategy();
    }

    let mut strategy = Strategy::with_capacity(picks.len());
    for z in picks {
        strategy.insert(z);
    }
    let selection_objective = running_revenue;
    let true_revenue = if cfg.ignores_saturation() {
        revenue(inst, &strategy)
    } else {
        selection_objective
    };
    GreedyOutcome {
        strategy,
        revenue: true_revenue,
        selection_objective,
        trace: Vec::new(),
        marginal_evaluations: evals,
        concurrency: stats,
    }
}

/// One shard's planning state for a single local-greedy time step.
struct LocalShard<'a, E> {
    shard: UserShard,
    inc: E,
    counted: Vec<bool>,
    _inst: std::marker::PhantomData<&'a ()>,
}

/// One shard's per-time-step frontier: heap over the shard's candidates,
/// lazy-forward flags, and the held (pre-popped) best move.
struct LocalFrontier<H> {
    heap: H,
    flags: Vec<u32>,
    held: Option<(u32, f64)>,
}

/// Runs the per-time-step local greedy (SL-Greedy order, or any explicit
/// order) on the shard-partitioned core with `pieces` user shards. Same plan
/// as the sequential driver, same arbitration scheme as [`sharded_plan`].
pub fn sharded_plan_order(
    inst: &Instance,
    order: &[u32],
    cfg: &PlannerConfig,
    pieces: usize,
) -> GreedyOutcome {
    sharded_plan_order_residual(inst, order, cfg, pieces, None)
}

/// [`sharded_plan_order`] for a residual replan (see
/// [`sharded_plan_residual`]).
pub fn sharded_plan_order_residual(
    inst: &Instance,
    order: &[u32],
    cfg: &PlannerConfig,
    pieces: usize,
    delta: Option<&ResidualDelta>,
) -> GreedyOutcome {
    use HeapKind::{IndexedDary, Lazy};
    type FlatEng<'i> = IncrementalRevenue<'i>;
    type HashEng<'i> = HashIncrementalRevenue<'i>;
    match (cfg.engine, cfg.heap) {
        (EngineKind::Flat, Lazy) => {
            sharded_local_greedy_impl::<FlatEng<'_>, LazyMaxHeap>(inst, order, cfg, pieces, delta)
        }
        (EngineKind::Flat, IndexedDary) => {
            sharded_local_greedy_impl::<FlatEng<'_>, IndexedDaryHeap>(
                inst, order, cfg, pieces, delta,
            )
        }
        (EngineKind::Hash, Lazy) => {
            sharded_local_greedy_impl::<HashEng<'_>, LazyMaxHeap>(inst, order, cfg, pieces, delta)
        }
        (EngineKind::Hash, IndexedDary) => {
            sharded_local_greedy_impl::<HashEng<'_>, IndexedDaryHeap>(
                inst, order, cfg, pieces, delta,
            )
        }
    }
}

/// Runs the per-time-step local greedy on the shard-partitioned core.
#[deprecated(
    since = "0.2.0",
    note = "use sharded_plan_order with a PlannerConfig; removal scheduled for 0.4.0"
)]
#[allow(deprecated)]
pub fn sharded_local_greedy(
    inst: &Instance,
    order: &[u32],
    opts: &crate::local_greedy::LocalGreedyOptions,
    pieces: usize,
) -> GreedyOutcome {
    sharded_plan_order(inst, order, &PlannerConfig::from(*opts), pieces)
}

fn sharded_local_greedy_impl<'a, E: RevenueEngine<'a>, H: GreedyHeap>(
    inst: &'a Instance,
    order: &[u32],
    cfg: &PlannerConfig,
    pieces: usize,
    delta: Option<&ResidualDelta>,
) -> GreedyOutcome {
    let shards = shard_users(inst, pieces);
    let ledger = SharedCapacityLedger::new(inst);
    // Same auto-enable contract as the sequential driver: `None` goes
    // parallel only on large instances.
    let parallel = cfg
        .parallel
        .unwrap_or(inst.num_candidates() >= crate::local_greedy::PARALLEL_SCAN_THRESHOLD);
    let mut workers: Vec<LocalShard<'a, E>> = par::scoped_map(
        shards,
        |shard| LocalShard {
            inc: make_engine(inst, false, shard, cfg, delta),
            counted: vec![false; shard.num_candidates()],
            shard,
            _inst: std::marker::PhantomData,
        },
        parallel,
    );

    let mut running_revenue = 0.0f64;
    let mut picks: Vec<Triple> = Vec::new();
    let mut trace = Vec::new();
    let mut evals: u64 = 0;

    for &tv in order {
        let t = TimeStep(tv);
        // Per-shard initial scan (read-only, deterministic, runs on scoped
        // workers when hardware parallelism is available), then the same
        // held-move arbitration as the global driver, per time step.
        let mut frontiers: Vec<LocalFrontier<H>> = par::scoped_map(
            workers.iter().collect::<Vec<_>>(),
            |w| {
                let n = w.shard.num_candidates();
                let mut values = vec![f64::NEG_INFINITY; n];
                let mut flags = vec![0u32; n];
                for local in 0..n {
                    let cand = CandidateId(w.shard.cand_start() + local as u32);
                    values[local] = w.inc.marginal_revenue_cand(cand, t);
                    flags[local] = w.inc.group_size_cand(cand) as u32;
                }
                let mut heap = H::build(&values);
                let held = heap.pop();
                LocalFrontier { heap, flags, held }
            },
            parallel,
        );
        evals += inst.num_candidates() as u64;

        'arbitrate: loop {
            let mut best: Option<(usize, f64, u32)> = None;
            let mut runner_up: Option<(f64, u32)> = None;
            for (wi, frontier) in frontiers.iter().enumerate() {
                if let Some((local, v)) = frontier.held {
                    let cand = workers[wi].shard.cand_start() + local;
                    if best.is_none_or(|(_, bv, bc)| precedes((v, cand), (bv, bc))) {
                        runner_up = best.map(|(_, bv, bc)| (bv, bc));
                        best = Some((wi, v, cand));
                    } else if runner_up.is_none_or(|ru| precedes((v, cand), ru)) {
                        runner_up = Some((v, cand));
                    }
                }
            }
            let Some((wi, value, _)) = best else {
                break;
            };
            if value <= 0.0 {
                break;
            }
            // Run the leading shard until its held move stops leading.
            let w = &mut workers[wi];
            let frontier = &mut frontiers[wi];
            loop {
                let (local_idx, _) = frontier.held.expect("leader holds a move");
                let cand = CandidateId(w.shard.cand_start() + local_idx);
                let item = inst.candidate_item(cand);
                let user = inst.candidate_user(cand);
                let display_bad = w.inc.would_violate_display_cand(cand, t);
                let capacity_bad =
                    protocol::claim_blocked(&ledger, w.counted[local_idx as usize], item, user);
                let requeue = if display_bad || capacity_bad {
                    None
                } else {
                    let group_size = w.inc.group_size_cand(cand) as u32;
                    if frontier.flags[local_idx as usize] == group_size {
                        let marginal = w.inc.insert_cand(cand, t);
                        let granted = protocol::commit_claim(
                            &ledger,
                            &mut w.counted[local_idx as usize],
                            item,
                            user,
                        );
                        debug_assert!(granted, "arbitrated claim must never be denied");
                        running_revenue += marginal;
                        picks.push(Triple { user, item, t });
                        trace.push(running_revenue);
                        None
                    } else {
                        let fresh = w.inc.marginal_revenue_cand(cand, t);
                        evals += 1;
                        frontier.flags[local_idx as usize] = group_size;
                        Some(fresh)
                    }
                };
                frontier.held = refresh_held(&mut frontier.heap, local_idx, requeue);

                let Some((local, v)) = frontier.held else {
                    continue 'arbitrate;
                };
                if v <= 0.0 {
                    continue 'arbitrate;
                }
                let cand = w.shard.cand_start() + local;
                if !runner_up.is_none_or(|ru| precedes((v, cand), ru)) {
                    continue 'arbitrate;
                }
            }
        }
    }

    // Release the shard engines (returns warm buffers to the pool).
    for w in workers {
        let _ = w.inc.into_strategy();
    }

    let mut strategy = Strategy::with_capacity(picks.len());
    for z in picks {
        strategy.insert(z);
    }
    GreedyOutcome {
        revenue: running_revenue,
        selection_objective: running_revenue,
        strategy,
        trace,
        marginal_evaluations: evals,
        concurrency: Default::default(),
    }
}
