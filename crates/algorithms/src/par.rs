//! Minimal scoped-thread parallelism helpers.
//!
//! The build environment ships no external crates, so instead of rayon the
//! greedy algorithms use `std::thread::scope` over explicit slice partitions.
//! Two properties matter here:
//!
//! * **determinism** — every element of the output slice is a pure function of
//!   its index, so the parallel and sequential fills produce bit-identical
//!   results (asserted by the equivalence tests in
//!   `crates/algorithms/tests/algorithm_properties.rs`);
//! * **per-user decomposition** — callers cut the candidate axis at user
//!   boundaries (the CSR layout keeps each user's candidates contiguous), the
//!   slate-construction decomposition of Keerthi & Tomlin (2007).

use std::num::NonZeroUsize;

/// Number of worker threads to use for a problem of `len` independent items.
pub fn worker_count(len: usize) -> usize {
    if len < 2 {
        return 1;
    }
    std::thread::available_parallelism()
        .map_or(1, NonZeroUsize::get)
        .min(len)
}

/// Cuts `0..total` into at most `pieces` ranges whose boundaries are drawn
/// from `boundaries` (a non-decreasing prefix array starting at 0 and ending
/// at `total`, e.g. the CSR `user_cand_start` offsets). Returns the cut
/// points, including `0` and `total`.
pub fn balanced_cuts(boundaries: &[u32], pieces: usize) -> Vec<usize> {
    let total = *boundaries.last().unwrap_or(&0) as usize;
    let mut cuts = vec![0usize];
    if total == 0 || pieces <= 1 {
        cuts.push(total);
        return cuts;
    }
    let mut next_target = total.div_ceil(pieces);
    for &b in boundaries {
        let b = b as usize;
        if b >= next_target && b > *cuts.last().expect("non-empty") && b < total {
            cuts.push(b);
            next_target = b + total.div_ceil(pieces);
        }
    }
    cuts.push(total);
    cuts
}

/// Fills `out` in parallel: piece `p` spans `cuts[p]..cuts[p + 1]`, and each
/// element `out[i]` is set to `f(i)`. Falls back to a sequential fill when
/// only one piece is given.
pub fn fill_by_cuts<T, F>(out: &mut [T], cuts: &[usize], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    debug_assert_eq!(cuts.first(), Some(&0));
    debug_assert_eq!(cuts.last(), Some(&out.len()));
    if cuts.len() <= 2 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = out;
        let f = &f;
        for w in cuts.windows(2) {
            let (piece, tail) = rest.split_at_mut(w[1] - w[0]);
            rest = tail;
            let start = w[0];
            scope.spawn(move || {
                for (i, slot) in piece.iter_mut().enumerate() {
                    *slot = f(start + i);
                }
            });
        }
    });
}

/// Maps `f` over `items`, one scoped worker per item when `parallel` is
/// requested and the hardware offers more than one unit of parallelism;
/// otherwise maps sequentially. Output order always follows input order, and
/// `f` is pure per item, so both paths are bit-identical — the shard
/// planners use this to build per-shard engines and candidate tables
/// concurrently without changing results.
pub fn scoped_map<T, R, F>(items: Vec<T>, f: F, parallel: bool) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if !parallel || items.len() <= 1 || worker_count(items.len()) <= 1 {
        return items.into_iter().map(f).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| scope.spawn(move || f(item)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Runs `worker(tid)` on `threads` persistent scoped worker threads while
/// `driver()` runs on the calling thread, returning the worker results (in
/// `tid` order) alongside the driver's. This is the long-lived counterpart
/// of [`scoped_map`]: where `scoped_map` spawns one short task per item,
/// `scoped_pool` keeps each worker alive for a whole planning run so the
/// concurrent shard executor can park and resume shards on the same OS
/// thread, with the coordinator (the driver) arbitrating from the calling
/// thread. With `threads <= 1` the single "worker" runs inline after the
/// driver — callers must not make the driver block on worker progress in
/// that configuration.
pub fn scoped_pool<R, D, W, F>(threads: usize, worker: W, driver: F) -> (Vec<R>, D)
where
    R: Send,
    W: Fn(usize) -> R + Sync,
    F: FnOnce() -> D,
{
    if threads <= 1 {
        let d = driver();
        let r = worker(0);
        return (vec![r], d);
    }
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (0..threads)
            .map(|tid| scope.spawn(move || worker(tid)))
            .collect();
        let d = driver();
        let results = handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect();
        (results, d)
    })
}

/// Convenience: parallel fill of `out` where `out[i] = f(i)`, cut into
/// `worker_count` even pieces (no boundary constraints).
pub fn parallel_fill<T, F>(out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let len = out.len();
    let workers = worker_count(len);
    if workers <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let chunk = len.div_ceil(workers);
    let mut cuts: Vec<usize> = (0..=workers).map(|p| (p * chunk).min(len)).collect();
    cuts.dedup();
    fill_by_cuts(out, &cuts, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_fill_matches_sequential() {
        let mut par = vec![0u64; 10_001];
        parallel_fill(&mut par, |i| (i as u64).wrapping_mul(2654435761));
        let seq: Vec<u64> = (0..10_001)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn balanced_cuts_respect_boundaries() {
        // CSR-style offsets: 4 users with 3, 1, 4, 2 candidates.
        let offsets = [0u32, 3, 4, 8, 10];
        let cuts = balanced_cuts(&offsets, 3);
        assert_eq!(*cuts.first().unwrap(), 0);
        assert_eq!(*cuts.last().unwrap(), 10);
        for w in cuts.windows(2) {
            assert!(w[0] < w[1]);
        }
        for c in &cuts {
            assert!(offsets.contains(&(*c as u32)));
        }
    }

    #[test]
    fn balanced_cuts_degenerate_cases() {
        assert_eq!(balanced_cuts(&[0], 4), vec![0, 0]);
        assert_eq!(balanced_cuts(&[0, 5], 1), vec![0, 5]);
        // One giant user cannot be split.
        assert_eq!(balanced_cuts(&[0, 100], 4), vec![0, 100]);
    }

    #[test]
    fn scoped_pool_runs_driver_alongside_workers() {
        use std::sync::mpsc;
        // Workers send their ids; the driver collects all of them while the
        // workers are still alive, proving driver/worker overlap.
        let (tx, rx) = mpsc::channel::<usize>();
        let tx = std::sync::Mutex::new(tx);
        let (ids, seen) = scoped_pool(
            4,
            |tid| {
                tx.lock().unwrap().send(tid).unwrap();
                tid * 10
            },
            move || {
                let mut got: Vec<usize> = (0..4).map(|_| rx.recv().unwrap()).collect();
                got.sort_unstable();
                got
            },
        );
        assert_eq!(ids, vec![0, 10, 20, 30]);
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scoped_pool_single_thread_is_inline() {
        let (r, d) = scoped_pool(1, |tid| tid + 7, || 42);
        assert_eq!(r, vec![7]);
        assert_eq!(d, 42);
    }

    #[test]
    fn fill_by_cuts_single_piece_is_sequential() {
        let mut out = vec![0usize; 5];
        fill_by_cuts(&mut out, &[0, 5], |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }
}
