//! The two intuitive baselines of §6.1.
//!
//! * **TopRA** ("Top RAting") — the classical customer-centric recommender:
//!   each user gets the `k` items with the highest predicted rating; being a
//!   static method, the same `k` items are repeated at every time step of the
//!   horizon.
//! * **TopRE** ("Top REvenue") — the static revenue-aware heuristic of prior
//!   work: at each time step, each user gets the `k` items with the highest
//!   isolated expected revenue `p(i, t) · q(u, i, t)`.
//!
//! Both ignore competition, saturation, and capacity while *choosing* items
//! (just like the originals); their achieved revenue is evaluated with the
//! full dynamic model, which is exactly how the paper compares them.

use crate::global_greedy::GreedyOutcome;
use revmax_core::{revenue, Instance, Strategy, Triple, UserId};

/// Per-user selection of the `k` best candidates according to a scoring closure.
fn top_k_for_user<F>(inst: &Instance, user: UserId, k: usize, score: F) -> Vec<revmax_core::ItemId>
where
    F: Fn(revmax_core::CandidateId) -> f64,
{
    let mut scored: Vec<(revmax_core::ItemId, f64)> = inst
        .candidates_of_user(user)
        .map(|c| (inst.candidate_item(c), score(c)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.into_iter().take(k).map(|(item, _)| item).collect()
}

/// TopRA: recommend to every user the `k` items with the highest predicted
/// rating, repeated at every time step.
pub fn top_rating(inst: &Instance) -> GreedyOutcome {
    let k = inst.display_limit() as usize;
    let mut strategy = Strategy::new();
    for u in 0..inst.num_users() {
        let user = UserId(u);
        let best = top_k_for_user(inst, user, k, |c| inst.candidate_rating(c));
        for item in best {
            for t in inst.time_steps() {
                strategy.insert(Triple { user, item, t });
            }
        }
    }
    outcome_from_strategy(inst, strategy)
}

/// TopRE: at each time step, recommend to every user the `k` items with the
/// highest isolated expected revenue `p(i, t) · q(u, i, t)`.
pub fn top_revenue(inst: &Instance) -> GreedyOutcome {
    let k = inst.display_limit() as usize;
    let mut strategy = Strategy::new();
    for u in 0..inst.num_users() {
        let user = UserId(u);
        for t in inst.time_steps() {
            let best = top_k_for_user(inst, user, k, |c| {
                inst.candidate_prob(c, t) * inst.price(inst.candidate_item(c), t)
            });
            for item in best {
                strategy.insert(Triple { user, item, t });
            }
        }
    }
    outcome_from_strategy(inst, strategy)
}

/// Evaluates a baseline strategy with the full dynamic revenue model.
fn outcome_from_strategy(inst: &Instance, strategy: Strategy) -> GreedyOutcome {
    let rev = revenue(inst, &strategy);
    GreedyOutcome {
        revenue: rev,
        selection_objective: rev,
        strategy,
        trace: Vec::new(),
        marginal_evaluations: 0,
        concurrency: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_greedy::global_greedy;
    use revmax_core::InstanceBuilder;

    fn instance() -> Instance {
        let mut b = InstanceBuilder::new(2, 3, 2);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .beta(0, 0.5)
            .beta(1, 0.5)
            .beta(2, 0.5)
            .prices(0, &[100.0, 90.0])
            .prices(1, &[10.0, 12.0])
            .prices(2, &[50.0, 55.0])
            // user 0: loves item 1 (cheap) but item 0 is expensive and still likely
            .candidate(0, 0, &[0.4, 0.5], 3.0)
            .candidate(0, 1, &[0.9, 0.9], 5.0)
            .candidate(0, 2, &[0.5, 0.5], 4.0)
            // user 1
            .candidate(1, 0, &[0.3, 0.35], 2.0)
            .candidate(1, 2, &[0.8, 0.8], 4.5);
        b.build().unwrap()
    }

    #[test]
    fn top_rating_picks_highest_rated_items() {
        let inst = instance();
        let out = top_rating(&inst);
        // User 0's highest-rated item is item 1 — repeated at both time steps.
        assert!(out.strategy.contains(Triple::new(0, 1, 1)));
        assert!(out.strategy.contains(Triple::new(0, 1, 2)));
        // User 1's highest-rated item is item 2.
        assert!(out.strategy.contains(Triple::new(1, 2, 1)));
        // k = 1, T = 2, 2 users → 4 triples.
        assert_eq!(out.strategy.len(), 4);
        assert!(out.strategy.satisfies_display(&inst));
    }

    #[test]
    fn top_revenue_prefers_expensive_likely_items() {
        let inst = instance();
        let out = top_revenue(&inst);
        // For user 0: expected isolated revenue of item 0 is 40/45 vs item 1's 9/10.8
        // and item 2's 25/27.5 — item 0 wins at both time steps.
        assert!(out.strategy.contains(Triple::new(0, 0, 1)));
        assert!(out.strategy.contains(Triple::new(0, 0, 2)));
        assert_eq!(out.strategy.len(), 4);
    }

    #[test]
    fn baselines_are_dominated_by_global_greedy() {
        let inst = instance();
        let gg = global_greedy(&inst);
        let ra = top_rating(&inst);
        let re = top_revenue(&inst);
        assert!(gg.revenue + 1e-9 >= re.revenue);
        assert!(gg.revenue + 1e-9 >= ra.revenue);
        // Revenue-aware beats rating-only on this price spread.
        assert!(re.revenue > ra.revenue);
    }

    #[test]
    fn baseline_revenue_is_evaluated_with_the_dynamic_model() {
        let inst = instance();
        let out = top_rating(&inst);
        assert!((out.revenue - revenue(&inst, &out.strategy)).abs() < 1e-12);
        // Repeating the same class at both steps costs revenue under the
        // dynamic model: the total is strictly below the naive sum of
        // isolated expected revenues.
        let naive: f64 = out.strategy.iter().map(|z| inst.isolated_revenue(z)).sum();
        assert!(out.revenue < naive);
    }
}
