//! A thin uniform front-end over all algorithms, used by the experiment
//! harness and the examples: pick an [`Algorithm`], get back a timed
//! [`RunReport`].

use crate::baselines::{top_rating, top_revenue};
use crate::config::{plan, PlannerConfig};
use crate::global_greedy::{global_greedy, global_no_saturation, GreedyOutcome};
use crate::local_greedy::{randomized_local_greedy, sequential_local_greedy};
use crate::staged::{global_greedy_staged, randomized_local_greedy_staged};
use revmax_core::Instance;
use std::time::{Duration, Instant};

/// The algorithms evaluated in the paper's experiments (§6), plus the staged
/// variants of §6.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Algorithm {
    /// G-Greedy (Algorithm 1), the paper's best performer.
    GlobalGreedy,
    /// G-Greedy on the shard-partitioned planning core (identical plan to
    /// [`Algorithm::GlobalGreedy`]; the shards change memory layout and
    /// parallelism, not behaviour).
    ShardedGlobalGreedy {
        /// Number of user shards (≥ 2 engages the sharded coordinator).
        shards: u32,
    },
    /// G-Greedy selecting as if no saturation existed (ablation "GG-No").
    GlobalNoSaturation,
    /// SL-Greedy (Algorithm 2), chronological per-time-step greedy.
    SequentialLocalGreedy,
    /// RL-Greedy with `permutations` sampled orderings of the horizon.
    RandomizedLocalGreedy {
        /// Number of sampled permutations (the paper uses `N = 20`).
        permutations: usize,
    },
    /// TopRA baseline: top-k items by predicted rating, repeated every day.
    TopRating,
    /// TopRE baseline: top-k items by isolated expected revenue per day.
    TopRevenue,
    /// G-Greedy with prices revealed per sub-horizon (e.g. `GG_2` with cut 2).
    StagedGlobalGreedy {
        /// End of each sub-horizon (cumulative cut points).
        stage_ends: Vec<u32>,
    },
    /// RL-Greedy with prices revealed per sub-horizon.
    StagedRandomizedLocalGreedy {
        /// End of each sub-horizon (cumulative cut points).
        stage_ends: Vec<u32>,
        /// Number of sampled permutations per stage.
        permutations: usize,
    },
}

impl Algorithm {
    /// Short display name matching the paper's figures (GG, GG-No, SLG, RLG,
    /// TopRat, TopRev, GG_c, RLG_c).
    pub fn name(&self) -> String {
        match self {
            Algorithm::GlobalGreedy => "GG".to_string(),
            Algorithm::ShardedGlobalGreedy { shards } => format!("GG-S{shards}"),
            Algorithm::GlobalNoSaturation => "GG-No".to_string(),
            Algorithm::SequentialLocalGreedy => "SLG".to_string(),
            Algorithm::RandomizedLocalGreedy { .. } => "RLG".to_string(),
            Algorithm::TopRating => "TopRat".to_string(),
            Algorithm::TopRevenue => "TopRev".to_string(),
            Algorithm::StagedGlobalGreedy { stage_ends } => {
                format!("GG_{}", stage_ends.first().copied().unwrap_or(0))
            }
            Algorithm::StagedRandomizedLocalGreedy { stage_ends, .. } => {
                format!("RLG_{}", stage_ends.first().copied().unwrap_or(0))
            }
        }
    }

    /// The six algorithms compared in Figures 1–3 of the paper.
    pub fn paper_lineup() -> Vec<Algorithm> {
        vec![
            Algorithm::GlobalGreedy,
            Algorithm::GlobalNoSaturation,
            Algorithm::RandomizedLocalGreedy { permutations: 20 },
            Algorithm::SequentialLocalGreedy,
            Algorithm::TopRevenue,
            Algorithm::TopRating,
        ]
    }
}

/// Timing + quality report of one algorithm run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Algorithm display name.
    pub algorithm: String,
    /// Expected total revenue of the produced strategy (true objective).
    pub revenue: f64,
    /// Number of selected triples.
    pub strategy_size: usize,
    /// Wall-clock running time.
    pub elapsed: Duration,
    /// Marginal-revenue evaluations (0 for the baselines).
    pub marginal_evaluations: u64,
    /// The full algorithm outcome, including the strategy.
    pub outcome: GreedyOutcome,
}

/// Runs an algorithm on an instance and reports revenue and running time.
pub fn run(inst: &Instance, algorithm: &Algorithm, seed: u64) -> RunReport {
    let start = Instant::now();
    let outcome = match algorithm {
        Algorithm::GlobalGreedy => global_greedy(inst),
        Algorithm::ShardedGlobalGreedy { shards } => {
            plan(inst, &PlannerConfig::default().with_shards(*shards))
        }
        Algorithm::GlobalNoSaturation => global_no_saturation(inst),
        Algorithm::SequentialLocalGreedy => sequential_local_greedy(inst),
        Algorithm::RandomizedLocalGreedy { permutations } => {
            randomized_local_greedy(inst, *permutations, seed)
        }
        Algorithm::TopRating => top_rating(inst),
        Algorithm::TopRevenue => top_revenue(inst),
        Algorithm::StagedGlobalGreedy { stage_ends } => global_greedy_staged(inst, stage_ends),
        Algorithm::StagedRandomizedLocalGreedy {
            stage_ends,
            permutations,
        } => randomized_local_greedy_staged(inst, stage_ends, *permutations, seed),
    };
    let elapsed = start.elapsed();
    RunReport {
        algorithm: algorithm.name(),
        revenue: outcome.revenue,
        strategy_size: outcome.strategy.len(),
        elapsed,
        marginal_evaluations: outcome.marginal_evaluations,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::InstanceBuilder;

    fn instance() -> Instance {
        let mut b = InstanceBuilder::new(3, 3, 3);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .beta(0, 0.5)
            .beta(1, 0.5)
            .beta(2, 0.5)
            .prices(0, &[30.0, 25.0, 28.0])
            .prices(1, &[10.0, 12.0, 9.0])
            .prices(2, &[18.0, 17.0, 19.0]);
        for u in 0..3 {
            b.candidate(u, 0, &[0.4, 0.5, 0.45], 4.0);
            b.candidate(u, 1, &[0.6, 0.5, 0.65], 3.5);
            b.candidate(u, 2, &[0.3, 0.35, 0.3], 4.2);
        }
        b.build().unwrap()
    }

    #[test]
    fn every_algorithm_runs_and_produces_valid_output() {
        let inst = instance();
        let mut algorithms = Algorithm::paper_lineup();
        algorithms.push(Algorithm::ShardedGlobalGreedy { shards: 2 });
        algorithms.push(Algorithm::StagedGlobalGreedy {
            stage_ends: vec![2],
        });
        algorithms.push(Algorithm::StagedRandomizedLocalGreedy {
            stage_ends: vec![2],
            permutations: 4,
        });
        for alg in algorithms {
            let report = run(&inst, &alg, 11);
            assert!(
                report.revenue >= 0.0,
                "{} produced negative revenue",
                report.algorithm
            );
            assert_eq!(report.strategy_size, report.outcome.strategy.len());
            assert!(report.outcome.strategy.satisfies_display(&inst));
            if !matches!(alg, Algorithm::TopRating | Algorithm::TopRevenue) {
                assert!(report.outcome.strategy.validate(&inst).is_ok());
            }
        }
    }

    #[test]
    fn sharded_runner_matches_global_greedy() {
        let inst = instance();
        let sequential = run(&inst, &Algorithm::GlobalGreedy, 0);
        let sharded = run(&inst, &Algorithm::ShardedGlobalGreedy { shards: 3 }, 0);
        assert!((sequential.revenue - sharded.revenue).abs() < 1e-9);
        assert_eq!(sequential.strategy_size, sharded.strategy_size);
        assert_eq!(sharded.algorithm, "GG-S3");
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Algorithm::GlobalGreedy.name(), "GG");
        assert_eq!(Algorithm::GlobalNoSaturation.name(), "GG-No");
        assert_eq!(Algorithm::SequentialLocalGreedy.name(), "SLG");
        assert_eq!(
            Algorithm::RandomizedLocalGreedy { permutations: 20 }.name(),
            "RLG"
        );
        assert_eq!(Algorithm::TopRating.name(), "TopRat");
        assert_eq!(Algorithm::TopRevenue.name(), "TopRev");
        assert_eq!(
            Algorithm::StagedGlobalGreedy {
                stage_ends: vec![4]
            }
            .name(),
            "GG_4"
        );
        assert_eq!(
            Algorithm::StagedRandomizedLocalGreedy {
                stage_ends: vec![2],
                permutations: 5
            }
            .name(),
            "RLG_2"
        );
        assert_eq!(Algorithm::paper_lineup().len(), 6);
    }

    #[test]
    fn global_greedy_wins_the_lineup_on_this_instance() {
        let inst = instance();
        let reports: Vec<RunReport> = Algorithm::paper_lineup()
            .iter()
            .map(|a| run(&inst, a, 5))
            .collect();
        let gg = reports.iter().find(|r| r.algorithm == "GG").unwrap();
        for r in &reports {
            assert!(
                gg.revenue + 1e-9 >= r.revenue,
                "GG ({}) was beaten by {} ({})",
                gg.revenue,
                r.algorithm,
                r.revenue
            );
        }
    }
}
