//! # revmax-algorithms
//!
//! Optimization algorithms for REVMAX, the revenue-maximizing dynamic
//! recommendation problem:
//!
//! * [`mod@global_greedy`] — G-Greedy (Algorithm 1): hill climbing over the entire
//!   `U × I × [T]` ground set with the two-level heap layout and the
//!   lazy-forward optimisation of §5.1, plus the `GlobalNo` ablation
//!   ([`global_no_saturation`]) that ignores saturation during selection;
//! * [`sequential_local_greedy`] / [`randomized_local_greedy`] — the per-time-
//!   step SL-Greedy and RL-Greedy algorithms of §5.2;
//! * [`top_rating`] / [`top_revenue`] — the TopRA and TopRE baselines of §6.1;
//! * [`global_greedy_staged`] / [`randomized_local_greedy_staged`] — the
//!   incomplete-price variants of §6.3 (Figure 7);
//! * [`local_search_r_revmax`] — the `1/(4+ε)` local-search approximation for
//!   the relaxed problem R-REVMAX (§4.2), practical only on small instances;
//! * [`solve_t1_exact`] — the exact Max-DCS solver for the PTIME `T = 1`
//!   special case (§3.2), via min-cost flow;
//! * [`exact_optimum`] — brute-force optimum for tiny instances (testing);
//! * [`MonteCarloOracle`] — Monte-Carlo capacity oracle for the effective
//!   adoption probabilities of Definition 4;
//! * [`run`] / [`Algorithm`] — a uniform timed front-end used by the
//!   experiment harness.
//!
//! All of the above are configured through one [`PlannerConfig`] (algorithm,
//! engine, heap, shard count, seed — builder methods plus a layered
//! [`PlannerConfig::from_env`]) and driven through the single entry point
//! [`plan`] (or [`plan_order`] for an explicit time-step ordering). The
//! historical `GreedyOptions` / `LocalGreedyOptions` structs are deprecated
//! thin conversions into `PlannerConfig`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod capacity_oracle;
pub mod config;
pub mod exhaustive;
pub mod global_greedy;
pub mod heap;
pub mod local_greedy;
pub mod local_search;
pub mod max_dcs;
pub mod par;
pub mod protocol;
pub mod runner;
pub mod sharded;
pub mod staged;

pub use baselines::{top_rating, top_revenue};
pub use capacity_oracle::MonteCarloOracle;
pub use config::{plan, plan_order, plan_residual, Aggregates, PlanAlgorithm, PlannerConfig};
pub use exhaustive::{candidate_triples, exact_optimum, ExactOutcome};
pub use global_greedy::{
    global_greedy, global_no_saturation, ConcurrencyStats, EngineKind, GreedyOutcome,
};
pub use heap::{GreedyHeap, HeapKind, IndexedDaryHeap, LazyMaxHeap};
pub use local_greedy::{
    local_greedy_with_order, randomized_local_greedy, sample_permutations, sequential_local_greedy,
};
pub use local_search::{
    exact_r_revmax_optimum, is_display_independent, local_search_r_revmax, slot_occupancy,
    LocalSearchOutcome,
};
pub use max_dcs::{solve_t1_exact, MaxDcsOutcome};
pub use runner::{run, Algorithm, RunReport};
pub use sharded::{
    shard_users, sharded_plan, sharded_plan_order, sharded_plan_order_residual,
    sharded_plan_residual,
};
pub use staged::{global_greedy_staged, randomized_local_greedy_staged, stages_from_ends};

// The deprecated pre-unification entry points stay importable from the crate
// root so existing code keeps compiling (with a deprecation warning).
#[allow(deprecated)]
pub use global_greedy::{global_greedy_with, GreedyOptions};
#[allow(deprecated)]
pub use local_greedy::{local_greedy_with_order_opts, LocalGreedyOptions};
#[allow(deprecated)]
pub use sharded::{sharded_global_greedy, sharded_local_greedy};
