//! The unified planner configuration and the single planning entry point.
//!
//! [`PlannerConfig`] subsumes the three historical option structs
//! (`GreedyOptions`, `LocalGreedyOptions`, and `revmax-serve`'s old
//! `PlanOptions`) behind one surface: pick an algorithm, an engine, a heap,
//! a shard count, and a seed, then call [`plan`]. The old structs survive as
//! thin `#[deprecated]` conversions (`impl From<…> for PlannerConfig`), so
//! code written against them keeps compiling and produces identical plans.
//!
//! ```
//! use revmax_algorithms::{plan, PlannerConfig};
//! use revmax_core::InstanceBuilder;
//!
//! let mut b = InstanceBuilder::new(2, 1, 2);
//! b.display_limit(1)
//!     .constant_price(0, 10.0)
//!     .candidate(0, 0, &[0.4, 0.5], 0.0)
//!     .candidate(1, 0, &[0.3, 0.2], 0.0);
//! let inst = b.build().unwrap();
//!
//! let outcome = plan(&inst, &PlannerConfig::default());
//! assert!(outcome.revenue > 0.0);
//! ```
//!
//! Every knob is a **performance knob, never a behaviour knob**: for a fixed
//! [`PlanAlgorithm`], any combination of engine, heap, shard count, and
//! parallelism produces the same strategy (asserted to 1e-9 by the engine
//! parity suites). The seed only matters for
//! [`PlanAlgorithm::RandomizedLocalGreedy`].

use crate::global_greedy::{EngineKind, GreedyOutcome};
use crate::heap::HeapKind;
use revmax_core::{env, AggregateMode, Instance, ResidualDelta};

/// Which planning algorithm a [`PlannerConfig`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanAlgorithm {
    /// G-Greedy (Algorithm 1) — the paper's best performer and the default.
    #[default]
    GlobalGreedy,
    /// G-Greedy selecting as if no saturation existed (the `GlobalNo`
    /// ablation); the reported revenue is always the true revenue.
    GlobalNoSaturation,
    /// SL-Greedy (Algorithm 2) — chronological per-time-step greedy.
    SequentialLocalGreedy,
    /// RL-Greedy — per-time-step greedy under sampled horizon orderings,
    /// best strategy kept. Uses [`PlannerConfig::seed`].
    RandomizedLocalGreedy {
        /// Number of sampled permutations (the paper uses 20).
        permutations: u32,
    },
}

/// How the flat engine's saturation-aggregate fast path is selected.
///
/// When every item of a class shares one saturation factor `β` (detected at
/// `Instance` build time, see `revmax_core::BetaProfile`), the flat engine
/// answers marginals from per-(group, time) closed-form accumulators in
/// `O(T)` instead of walking the group's selected triples. Mixed-β classes
/// always fall back to the exact slab walk, so every mode is safe on every
/// instance; like all planner knobs this changes speed, never results
/// (parity asserted to 1e-9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregates {
    /// Let the engine's kernel compiler decide per (user, class) group using
    /// a measured depth crossover: groups with a short residual horizon or
    /// trivially few candidates compile to the plain slab walk (on shallow
    /// warm-residual groups the aggregate block costs more to maintain than
    /// it saves), deeper groups compile to the aggregate kernel. The default.
    #[default]
    Auto,
    /// Engage the fast path for **every** qualifying (uniform-β) group,
    /// bypassing [`Aggregates::Auto`]'s depth gate — the fixed opt-in that
    /// the aggregate-vs-walk bench rows and parity suites pin against.
    On,
    /// Never engage the fast path; every group uses the slab walk (the
    /// ablation the aggregate-vs-walk bench rows measure).
    Off,
}

impl Aggregates {
    /// Whether engines should enable their aggregate path.
    pub fn enabled(&self) -> bool {
        !matches!(self, Aggregates::Off)
    }

    /// The engine-side kernel-selection mode this knob maps to.
    pub fn mode(&self) -> AggregateMode {
        match self {
            Aggregates::Auto => AggregateMode::Auto,
            Aggregates::On => AggregateMode::On,
            Aggregates::Off => AggregateMode::Off,
        }
    }
}

/// The unified configuration for every REVMAX planner.
///
/// Construct with [`PlannerConfig::default`] plus the `with_*` builder
/// methods, with a struct literal, or from the environment with
/// [`PlannerConfig::from_env`] / [`PlannerConfig::env_overlay`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// The algorithm to run.
    pub algorithm: PlanAlgorithm,
    /// Incremental revenue engine backing the run.
    pub engine: EngineKind,
    /// Heap implementation backing the selection loops.
    pub heap: HeapKind,
    /// Number of user shards (`0`/`1` = the sequential driver, `n ≥ 2` = the
    /// shard-partitioned core of [`crate::sharded`]).
    pub shards: u32,
    /// Seed for the randomized algorithms (RL-Greedy permutation sampling).
    pub seed: u64,
    /// Use the lazy-forward optimisation (on by default); turning it off is
    /// the eager re-evaluation ablation.
    pub lazy_forward: bool,
    /// Use the two-level heap layout of §5.1 (on by default); off selects
    /// the single giant heap over all candidate triples (ablation).
    pub two_level_heaps: bool,
    /// Record the objective value after every selection (Figure 4 traces).
    pub track_trace: bool,
    /// Thread parallelism for the deterministic fill/scan phases: `None`
    /// (default) lets each driver auto-decide by instance size, `Some(x)`
    /// forces it on or off. Parallel and sequential fills are bit-identical.
    pub parallel: Option<bool>,
    /// Warm-start residual replans (off by default): when a replan comes
    /// with a [`ResidualDelta`] (see [`plan_residual`]), engines recycle the
    /// previous replan's saturation tables and arena buffers instead of
    /// rebuilding them, and `revmax_serve::PlanSession` builds each residual
    /// instance incrementally (`revmax_core::residual_advance`). Like every
    /// other knob this is purely a performance switch — warm and cold
    /// replans produce identical plans (asserted to 1e-9 for both engines at
    /// shard counts 1 and 2).
    pub warm_start: bool,
    /// Saturation-aggregate fast path selection (default
    /// [`Aggregates::Auto`]): uniform-β classes answer marginals from `O(T)`
    /// closed-form accumulators, mixed-β classes keep the exact slab walk.
    pub aggregates: Aggregates,
    /// Selects the kernel-compiled drivers and, where they still run on
    /// lazy heaps, the width of their batched refresh bursts (default 8).
    /// `0` runs the legacy pop/refresh/push loop everywhere — the
    /// "generic" baseline the kernel-vs-generic bench rows measure. Any
    /// value `≥ 1` switches the sequential G-Greedy core onto the
    /// tournament-tree driver (selection over candidate roots with O(1)
    /// pops and swap-free path fixes; the value itself is ignored there —
    /// stale runs refresh implicitly through the tree) on instances of
    /// ~4k candidates or more — below that size gate the tree build and
    /// eager blocking don't amortise and the scalar loop is kept — while
    /// the sharded
    /// and SLG heap drivers collect up to `kernel_batch` stale tops per
    /// pop and refresh the run in one pass grouped by compiled kernel id
    /// (`RevenueEngine::kernel_id_cand`). Purely a performance knob: all
    /// widths produce bit-identical plans (a refreshed marginal depends
    /// only on the candidate's own group, so refreshing it earlier or
    /// later in a burst cannot change its value).
    pub kernel_batch: u32,
    /// Worker threads for the **concurrent shard executor** of the sharded
    /// G-Greedy core (default `1` = the sequential value-ordered
    /// arbitration, unchanged from previous releases). With `≥ 2`, shards
    /// free-run on a persistent scoped worker pool, committing
    /// scarcity-window-abundant claims lock-free and parking only
    /// scarce-window moves for the coordinator (see `docs/concurrency.md`,
    /// "The capacity window"). `0` = auto: `min(shards,
    /// available_parallelism)`. Like every knob this is purely a
    /// performance switch — every thread count reproduces the sequential
    /// plan (parity asserted to 1e-9). Ignored (forced sequential) when
    /// `shards <= 1` or when `track_trace` is set, since the trace records
    /// the global selection order the concurrent executor does not
    /// materialise move-by-move.
    pub shard_threads: u32,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            algorithm: PlanAlgorithm::default(),
            engine: EngineKind::default(),
            heap: HeapKind::default(),
            shards: 1,
            seed: 0,
            lazy_forward: true,
            two_level_heaps: true,
            track_trace: false,
            parallel: None,
            warm_start: false,
            aggregates: Aggregates::default(),
            kernel_batch: 8,
            shard_threads: 1,
        }
    }
}

impl PlannerConfig {
    /// The default configuration (G-Greedy, flat engine, lazy heap, 1 shard).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the algorithm.
    pub fn with_algorithm(mut self, algorithm: PlanAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the incremental revenue engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the heap implementation.
    pub fn with_heap(mut self, heap: HeapKind) -> Self {
        self.heap = heap;
        self
    }

    /// Selects the user-shard count (`0` is normalised to `1`).
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Selects the seed for the randomized algorithms.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches the lazy-forward optimisation.
    pub fn with_lazy_forward(mut self, lazy_forward: bool) -> Self {
        self.lazy_forward = lazy_forward;
        self
    }

    /// Switches the two-level heap layout.
    pub fn with_two_level_heaps(mut self, two_level_heaps: bool) -> Self {
        self.two_level_heaps = two_level_heaps;
        self
    }

    /// Switches per-selection objective tracing.
    pub fn with_track_trace(mut self, track_trace: bool) -> Self {
        self.track_trace = track_trace;
        self
    }

    /// Forces the deterministic fill/scan parallelism on or off
    /// (`None` = auto by instance size).
    pub fn with_parallel(mut self, parallel: Option<bool>) -> Self {
        self.parallel = parallel;
        self
    }

    /// Switches warm-started residual replans (see
    /// [`PlannerConfig::warm_start`]).
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Selects the saturation-aggregate fast-path mode (see
    /// [`PlannerConfig::aggregates`]).
    pub fn with_aggregates(mut self, aggregates: Aggregates) -> Self {
        self.aggregates = aggregates;
        self
    }

    /// Selects the batched heap-refresh width (see
    /// [`PlannerConfig::kernel_batch`]; `0` selects the legacy scalar loop).
    pub fn with_kernel_batch(mut self, kernel_batch: u32) -> Self {
        self.kernel_batch = kernel_batch;
        self
    }

    /// Selects the concurrent shard executor's worker-thread count (see
    /// [`PlannerConfig::shard_threads`]; `1` = sequential arbitration,
    /// `0` = auto).
    pub fn with_shard_threads(mut self, shard_threads: u32) -> Self {
        self.shard_threads = shard_threads;
        self
    }

    /// Default configuration with the environment knobs layered on top —
    /// shorthand for `PlannerConfig::default().env_overlay()`.
    pub fn from_env() -> Self {
        Self::default().env_overlay()
    }

    /// Layers the `REVMAX_*` environment knobs over this configuration, so
    /// binaries and examples expose runtime selection without recompiling:
    ///
    /// * `REVMAX_ALGORITHM` — `gg` (default), `gg-no`, `slg`, or `rlg`
    ///   (RL-Greedy with the paper's 20 permutations);
    /// * `REVMAX_ENGINE` — `flat` (default) or `hash`;
    /// * `REVMAX_HEAP` — `lazy` (default) or `dary` / `indexed_dary`;
    /// * `REVMAX_SHARDS` — shard count (`≥ 2` engages the sharded core);
    /// * `REVMAX_SEED` — seed for the randomized algorithms;
    /// * `REVMAX_WARM_START` — `1` enables warm-started residual replans;
    /// * `REVMAX_AGGREGATES` — `auto` (default), `on`, or `off`: the
    ///   saturation-aggregate fast path for uniform-β classes;
    /// * `REVMAX_KERNEL_BATCH` — batched heap-refresh width (default 8,
    ///   `0` = the legacy scalar refresh loop);
    /// * `REVMAX_SHARD_THREADS` — worker threads for the concurrent shard
    ///   executor (default 1 = sequential arbitration, `0` = auto).
    ///
    /// Unset or unparsable values keep the receiver's setting — selection
    /// must never change results (only speed), so a typo degrades
    /// gracefully. Parsing goes through the shared [`revmax_core::env`]
    /// module.
    pub fn env_overlay(mut self) -> Self {
        if let Some(algorithm) = env::var_with("REVMAX_ALGORITHM", parse_algorithm) {
            self.algorithm = algorithm;
        }
        if let Some(engine) = env::var_with("REVMAX_ENGINE", parse_engine) {
            self.engine = engine;
        }
        if let Some(heap) = env::var_with("REVMAX_HEAP", parse_heap) {
            self.heap = heap;
        }
        if let Some(shards) = env::var::<u32>("REVMAX_SHARDS") {
            self.shards = shards.max(1);
        }
        if let Some(seed) = env::var::<u64>("REVMAX_SEED") {
            self.seed = seed;
        }
        if let Some(warm) = env::var::<u32>("REVMAX_WARM_START") {
            self.warm_start = warm != 0;
        }
        if let Some(aggregates) = env::var_with("REVMAX_AGGREGATES", parse_aggregates) {
            self.aggregates = aggregates;
        }
        if let Some(kernel_batch) = env::var::<u32>("REVMAX_KERNEL_BATCH") {
            self.kernel_batch = kernel_batch;
        }
        if let Some(shard_threads) = env::var::<u32>("REVMAX_SHARD_THREADS") {
            self.shard_threads = shard_threads;
        }
        self
    }

    /// Whether selection pretends `β_i = 1` (the `GlobalNo` ablation).
    pub(crate) fn ignores_saturation(&self) -> bool {
        matches!(self.algorithm, PlanAlgorithm::GlobalNoSaturation)
    }

    /// Greedy init-fill parallelism (the historical default was on; the
    /// fill itself is additionally gated by instance size).
    pub(crate) fn parallel_init(&self) -> bool {
        self.parallel.unwrap_or(true)
    }

    /// Resolves [`PlannerConfig::shard_threads`] to the worker count the
    /// sharded G-Greedy core actually uses: `0` auto-sizes to
    /// `min(shards, available_parallelism)`, explicit values are capped at
    /// the shard count, and single-shard or traced runs always resolve to
    /// `1` (the sequential arbitration loop).
    pub(crate) fn effective_shard_threads(&self, shards: usize) -> usize {
        if shards <= 1 || self.track_trace {
            return 1;
        }
        let requested = if self.shard_threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.shard_threads as usize
        };
        requested.min(shards).max(1)
    }
}

fn parse_algorithm(s: &str) -> Option<PlanAlgorithm> {
    match s {
        "gg" | "global" | "global_greedy" => Some(PlanAlgorithm::GlobalGreedy),
        "gg-no" | "gg_no" | "no_saturation" => Some(PlanAlgorithm::GlobalNoSaturation),
        "slg" | "local" | "sequential_local" => Some(PlanAlgorithm::SequentialLocalGreedy),
        "rlg" | "randomized_local" => {
            Some(PlanAlgorithm::RandomizedLocalGreedy { permutations: 20 })
        }
        _ => None,
    }
}

fn parse_engine(s: &str) -> Option<EngineKind> {
    match s {
        "flat" => Some(EngineKind::Flat),
        "hash" => Some(EngineKind::Hash),
        _ => None,
    }
}

fn parse_heap(s: &str) -> Option<HeapKind> {
    match s {
        "lazy" => Some(HeapKind::Lazy),
        "dary" | "indexed_dary" => Some(HeapKind::IndexedDary),
        _ => None,
    }
}

fn parse_aggregates(s: &str) -> Option<Aggregates> {
    match s {
        "auto" => Some(Aggregates::Auto),
        "on" | "1" | "true" => Some(Aggregates::On),
        "off" | "0" | "false" => Some(Aggregates::Off),
        _ => None,
    }
}

/// Plans an instance with the configured algorithm — the single entry point
/// the service layer, examples, and experiments are built on.
pub fn plan(inst: &Instance, config: &PlannerConfig) -> GreedyOutcome {
    plan_residual(inst, config, None)
}

/// [`plan`] for a **residual replan**: when `delta` is present and
/// `config.warm_start` is set, the engines are constructed through
/// [`revmax_core::RevenueEngine::warm_start`], recycling the saturation
/// tables and buffers pooled in the delta's
/// [`revmax_core::EngineSnapshot`]. Warm and cold runs produce identical
/// plans; the delta is purely a performance handle.
pub fn plan_residual(
    inst: &Instance,
    config: &PlannerConfig,
    delta: Option<&ResidualDelta>,
) -> GreedyOutcome {
    match config.algorithm {
        PlanAlgorithm::GlobalGreedy | PlanAlgorithm::GlobalNoSaturation => {
            crate::global_greedy::dispatch(inst, config, delta)
        }
        PlanAlgorithm::SequentialLocalGreedy => {
            let order: Vec<u32> = (1..=inst.horizon()).collect();
            crate::local_greedy::dispatch_order(inst, &order, config, delta)
        }
        PlanAlgorithm::RandomizedLocalGreedy { permutations } => {
            crate::local_greedy::randomized_with(inst, config, permutations as usize, delta)
        }
    }
}

/// Runs the per-time-step greedy under an explicit ordering of time steps
/// (a permutation of `1..=T`, or a subset — only those steps receive
/// recommendations). The configured algorithm field is ignored; engine,
/// heap, shards, and parallelism apply.
pub fn plan_order(inst: &Instance, order: &[u32], config: &PlannerConfig) -> GreedyOutcome {
    crate::local_greedy::dispatch_order(inst, order, config, None)
}

#[allow(deprecated)]
impl From<crate::global_greedy::GreedyOptions> for PlannerConfig {
    fn from(o: crate::global_greedy::GreedyOptions) -> Self {
        PlannerConfig {
            algorithm: if o.ignore_saturation {
                PlanAlgorithm::GlobalNoSaturation
            } else {
                PlanAlgorithm::GlobalGreedy
            },
            engine: o.engine,
            heap: o.heap,
            shards: o.shards.max(1),
            seed: 0,
            lazy_forward: o.lazy_forward,
            two_level_heaps: o.two_level_heaps,
            track_trace: o.track_trace,
            parallel: Some(o.parallel_init),
            warm_start: false,
            aggregates: Aggregates::default(),
            kernel_batch: PlannerConfig::default().kernel_batch,
            shard_threads: 1,
        }
    }
}

#[allow(deprecated)]
impl From<crate::local_greedy::LocalGreedyOptions> for PlannerConfig {
    fn from(o: crate::local_greedy::LocalGreedyOptions) -> Self {
        PlannerConfig {
            algorithm: PlanAlgorithm::SequentialLocalGreedy,
            engine: o.engine,
            heap: o.heap,
            shards: o.shards.max(1),
            parallel: o.parallel_scan,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let cfg = PlannerConfig::new()
            .with_algorithm(PlanAlgorithm::SequentialLocalGreedy)
            .with_engine(EngineKind::Hash)
            .with_heap(HeapKind::IndexedDary)
            .with_shards(0)
            .with_seed(7)
            .with_lazy_forward(false)
            .with_two_level_heaps(false)
            .with_track_trace(true)
            .with_parallel(Some(false))
            .with_aggregates(Aggregates::Off)
            .with_kernel_batch(0);
        assert_eq!(cfg.algorithm, PlanAlgorithm::SequentialLocalGreedy);
        assert_eq!(cfg.engine, EngineKind::Hash);
        assert_eq!(cfg.heap, HeapKind::IndexedDary);
        assert_eq!(cfg.shards, 1, "0 shards normalises to 1");
        assert_eq!(cfg.seed, 7);
        assert!(!cfg.lazy_forward);
        assert!(!cfg.two_level_heaps);
        assert!(cfg.track_trace);
        assert_eq!(cfg.parallel, Some(false));
        assert_eq!(cfg.aggregates, Aggregates::Off);
        assert!(!cfg.aggregates.enabled());
        assert!(PlannerConfig::default().aggregates.enabled());
        assert_eq!(cfg.kernel_batch, 0);
        assert_eq!(
            PlannerConfig::default().kernel_batch,
            8,
            "batched refresh is the default driver"
        );
    }

    #[test]
    fn aggregates_map_onto_the_engine_modes() {
        assert_eq!(Aggregates::Auto.mode(), AggregateMode::Auto);
        assert_eq!(Aggregates::On.mode(), AggregateMode::On);
        assert_eq!(Aggregates::Off.mode(), AggregateMode::Off);
        assert_eq!(Aggregates::default().mode(), AggregateMode::default());
    }

    #[test]
    fn kernel_batch_env_knob_overlays_and_degrades_gracefully() {
        // `env_overlay` reads through `revmax_core::env`, which trims and
        // rejects unparsable values, keeping the receiver's setting.
        let base = PlannerConfig::default().with_kernel_batch(3);
        std::env::set_var("REVMAX_KERNEL_BATCH", "16");
        assert_eq!(base.env_overlay().kernel_batch, 16);
        std::env::set_var("REVMAX_KERNEL_BATCH", " 0 ");
        assert_eq!(base.env_overlay().kernel_batch, 0, "0 = legacy scalar loop");
        std::env::set_var("REVMAX_KERNEL_BATCH", "not-a-number");
        assert_eq!(base.env_overlay().kernel_batch, 3, "typo keeps the setting");
        std::env::remove_var("REVMAX_KERNEL_BATCH");
        assert_eq!(base.env_overlay().kernel_batch, 3);
    }

    #[test]
    fn shard_threads_resolve_sequential_unless_concurrent_applies() {
        let cfg = PlannerConfig::default();
        assert_eq!(
            cfg.shard_threads, 1,
            "sequential arbitration is the default"
        );
        assert_eq!(cfg.effective_shard_threads(1), 1, "one shard never pools");
        assert_eq!(cfg.effective_shard_threads(4), 1);

        let cfg = cfg.with_shard_threads(4);
        assert_eq!(cfg.effective_shard_threads(4), 4);
        assert_eq!(cfg.effective_shard_threads(2), 2, "capped at shard count");
        assert_eq!(cfg.effective_shard_threads(1), 1);
        assert_eq!(
            cfg.with_track_trace(true).effective_shard_threads(4),
            1,
            "traces record the sequential selection order"
        );

        // Auto mode never exceeds the shard count either.
        let auto = PlannerConfig::default().with_shard_threads(0);
        assert!(auto.effective_shard_threads(2) <= 2);
        assert!(auto.effective_shard_threads(8) >= 1);

        std::env::set_var("REVMAX_SHARD_THREADS", "3");
        assert_eq!(PlannerConfig::default().env_overlay().shard_threads, 3);
        std::env::remove_var("REVMAX_SHARD_THREADS");
        assert_eq!(PlannerConfig::default().env_overlay().shard_threads, 1);
    }

    #[test]
    fn knob_parsers_accept_the_documented_values() {
        assert_eq!(parse_aggregates("auto"), Some(Aggregates::Auto));
        assert_eq!(parse_aggregates("on"), Some(Aggregates::On));
        assert_eq!(parse_aggregates("1"), Some(Aggregates::On));
        assert_eq!(parse_aggregates("off"), Some(Aggregates::Off));
        assert_eq!(parse_aggregates("0"), Some(Aggregates::Off));
        assert_eq!(parse_aggregates("typo"), None);
        assert_eq!(parse_engine("flat"), Some(EngineKind::Flat));
        assert_eq!(parse_engine("hash"), Some(EngineKind::Hash));
        assert_eq!(parse_engine("typo"), None);
        assert_eq!(parse_heap("lazy"), Some(HeapKind::Lazy));
        assert_eq!(parse_heap("dary"), Some(HeapKind::IndexedDary));
        assert_eq!(parse_heap("indexed_dary"), Some(HeapKind::IndexedDary));
        assert_eq!(parse_algorithm("gg"), Some(PlanAlgorithm::GlobalGreedy));
        assert_eq!(
            parse_algorithm("gg-no"),
            Some(PlanAlgorithm::GlobalNoSaturation)
        );
        assert_eq!(
            parse_algorithm("slg"),
            Some(PlanAlgorithm::SequentialLocalGreedy)
        );
        assert_eq!(
            parse_algorithm("rlg"),
            Some(PlanAlgorithm::RandomizedLocalGreedy { permutations: 20 })
        );
        assert_eq!(parse_algorithm("brute_force"), None);
    }

    #[test]
    #[allow(deprecated)]
    fn conversions_from_the_deprecated_structs_preserve_every_knob() {
        use crate::global_greedy::GreedyOptions;
        use crate::local_greedy::LocalGreedyOptions;

        let greedy = GreedyOptions {
            ignore_saturation: true,
            lazy_forward: false,
            two_level_heaps: false,
            track_trace: true,
            engine: EngineKind::Hash,
            parallel_init: false,
            heap: HeapKind::IndexedDary,
            shards: 3,
        };
        let cfg = PlannerConfig::from(greedy);
        assert_eq!(cfg.algorithm, PlanAlgorithm::GlobalNoSaturation);
        assert_eq!(cfg.engine, EngineKind::Hash);
        assert_eq!(cfg.heap, HeapKind::IndexedDary);
        assert_eq!(cfg.shards, 3);
        assert!(!cfg.lazy_forward);
        assert!(!cfg.two_level_heaps);
        assert!(cfg.track_trace);
        assert_eq!(cfg.parallel, Some(false));

        let local = LocalGreedyOptions {
            engine: EngineKind::Hash,
            parallel_scan: Some(true),
            heap: HeapKind::IndexedDary,
            shards: 2,
        };
        let cfg = PlannerConfig::from(local);
        assert_eq!(cfg.algorithm, PlanAlgorithm::SequentialLocalGreedy);
        assert_eq!(cfg.engine, EngineKind::Hash);
        assert_eq!(cfg.shards, 2);
        assert_eq!(cfg.parallel, Some(true));
    }
}
