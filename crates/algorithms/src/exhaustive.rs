//! Exact (exponential-time) optimum for tiny instances.
//!
//! REVMAX is NP-hard (Theorem 1), so no polynomial exact solver exists in
//! general; this brute-force enumerator exists purely to validate the greedy
//! heuristics and the local-search approximation on instances with a handful
//! of candidate triples.

use revmax_core::{revenue, Instance, Strategy, TimeStep, Triple};

/// The exact optimum of a tiny instance.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// An optimal valid strategy.
    pub strategy: Strategy,
    /// Its expected revenue.
    pub revenue: f64,
    /// Number of candidate triples that were enumerated over.
    pub ground_set_size: usize,
}

/// Enumerates the candidate triples of an instance (positive primitive
/// adoption probability only).
pub fn candidate_triples(inst: &Instance) -> Vec<Triple> {
    let mut out = Vec::new();
    for cand in inst.candidates() {
        let user = inst.candidate_user(cand);
        let item = inst.candidate_item(cand);
        for (t_idx, &q) in inst.candidate_probs(cand).iter().enumerate() {
            if q > 0.0 {
                out.push(Triple {
                    user,
                    item,
                    t: TimeStep::from_index(t_idx),
                });
            }
        }
    }
    out
}

/// Finds the optimal valid strategy by enumerating all subsets of the candidate
/// ground set. Panics if the ground set has more than `max_ground_set`
/// elements (default sanity limit 22 → ~4M subsets).
pub fn exact_optimum(inst: &Instance, max_ground_set: usize) -> ExactOutcome {
    let triples = candidate_triples(inst);
    let n = triples.len();
    assert!(
        n <= max_ground_set,
        "exact optimum requested for {n} candidate triples (limit {max_ground_set})"
    );
    let mut best_strategy = Strategy::new();
    let mut best_revenue = 0.0;
    for mask in 0u64..(1u64 << n) {
        let mut s = Strategy::with_capacity(mask.count_ones() as usize);
        for (idx, &z) in triples.iter().enumerate() {
            if mask & (1 << idx) != 0 {
                s.insert(z);
            }
        }
        if s.validate(inst).is_err() {
            continue;
        }
        let r = revenue(inst, &s);
        if r > best_revenue {
            best_revenue = r;
            best_strategy = s;
        }
    }
    ExactOutcome {
        strategy: best_strategy,
        revenue: best_revenue,
        ground_set_size: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_greedy::global_greedy;
    use crate::local_greedy::{randomized_local_greedy, sequential_local_greedy};
    use revmax_core::InstanceBuilder;

    fn tiny_instance() -> Instance {
        let mut b = InstanceBuilder::new(2, 2, 2);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .beta(0, 0.2)
            .beta(1, 0.6)
            .capacity(0, 1)
            .capacity(1, 2)
            .prices(0, &[40.0, 30.0])
            .prices(1, &[10.0, 14.0])
            .candidate(0, 0, &[0.5, 0.7], 0.0)
            .candidate(0, 1, &[0.8, 0.6], 0.0)
            .candidate(1, 0, &[0.4, 0.45], 0.0)
            .candidate(1, 1, &[0.3, 0.5], 0.0);
        b.build().unwrap()
    }

    #[test]
    fn exact_dominates_every_heuristic() {
        let inst = tiny_instance();
        let exact = exact_optimum(&inst, 22);
        assert!(exact.revenue > 0.0);
        assert!(exact.strategy.validate(&inst).is_ok());
        for out in [
            global_greedy(&inst),
            sequential_local_greedy(&inst),
            randomized_local_greedy(&inst, 2, 5),
        ] {
            assert!(out.revenue <= exact.revenue + 1e-9);
            // On this tiny instance the greedy family should get ≥ 80 % of OPT.
            assert!(
                out.revenue >= 0.8 * exact.revenue,
                "heuristic revenue {} too far below optimum {}",
                out.revenue,
                exact.revenue
            );
        }
    }

    #[test]
    fn exact_is_at_least_single_best_triple() {
        let inst = tiny_instance();
        let exact = exact_optimum(&inst, 22);
        let best_single = candidate_triples(&inst)
            .into_iter()
            .map(|z| inst.isolated_revenue(z))
            .fold(0.0, f64::max);
        assert!(exact.revenue + 1e-9 >= best_single);
    }

    #[test]
    fn ground_set_counts_positive_probability_triples_only() {
        let mut b = InstanceBuilder::new(1, 1, 3);
        b.constant_price(0, 1.0)
            .candidate(0, 0, &[0.5, 0.0, 0.2], 0.0);
        let inst = b.build().unwrap();
        assert_eq!(candidate_triples(&inst).len(), 2);
        let exact = exact_optimum(&inst, 10);
        assert_eq!(exact.ground_set_size, 2);
    }

    #[test]
    #[should_panic(expected = "exact optimum requested")]
    fn refuses_oversized_ground_sets() {
        let mut b = InstanceBuilder::new(5, 5, 2);
        b.display_limit(2);
        for i in 0..5u32 {
            b.constant_price(i, 1.0);
        }
        for u in 0..5u32 {
            for i in 0..5u32 {
                b.candidate(u, i, &[0.5, 0.5], 0.0);
            }
        }
        let inst = b.build().unwrap();
        let _ = exact_optimum(&inst, 22);
    }
}
