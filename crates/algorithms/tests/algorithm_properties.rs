//! Seeded randomized property and integration tests for the algorithm suite:
//! greedy validity and quality against the exact optimum on tiny instances,
//! engine (flat vs hash) and parallelism equivalence, the Max-DCS upper bound
//! for `T = 1`, the local-search guarantee, and end-to-end runs on generated
//! datasets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revmax_algorithms::{
    exact_optimum, global_greedy, local_search_r_revmax, plan, plan_order, randomized_local_greedy,
    run, sequential_local_greedy, sharded_plan, sharded_plan_order, solve_t1_exact, top_rating,
    top_revenue, Algorithm, EngineKind, HeapKind, PlanAlgorithm, PlannerConfig,
};
use revmax_core::{revenue, Instance, InstanceBuilder};
use revmax_data::{generate, DatasetConfig};

/// Draws a random small instance (2–3 users, 2–4 items, horizon 1–3).
fn random_small_instance(rng: &mut StdRng) -> Instance {
    let num_users = rng.gen_range(2u32..=3);
    let num_items = rng.gen_range(2u32..=4);
    let horizon = rng.gen_range(1u32..=3);
    let mut b = InstanceBuilder::new(num_users, num_items, horizon);
    b.display_limit(rng.gen_range(1u32..=2));
    for item in 0..num_items {
        b.item_class(item, rng.gen_range(0u32..2));
        b.beta(item, rng.gen_range(0.0..=1.0));
        b.capacity(item, rng.gen_range(1u32..=3));
        let prices: Vec<f64> = (0..horizon).map(|_| rng.gen_range(1.0..30.0)).collect();
        b.prices(item, &prices);
    }
    for user in 0..num_users {
        for item in 0..num_items {
            let probs: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.0..=1.0)).collect();
            if probs.iter().any(|&p| p > 0.0) {
                b.candidate(user, item, &probs, probs[0] * 5.0);
            }
        }
    }
    b.build().expect("random instance must build")
}

/// Every greedy algorithm emits a valid strategy whose reported revenue
/// matches an independent re-evaluation, and G-Greedy's revenue at least
/// matches the best isolated triple (its first pick).
#[test]
fn greedy_outputs_are_valid_and_consistent() {
    let mut rng = StdRng::seed_from_u64(41);
    for case in 0..48 {
        let inst = random_small_instance(&mut rng);
        let best_single = revmax_algorithms::candidate_triples(&inst)
            .into_iter()
            .map(|z| inst.isolated_revenue(z))
            .fold(0.0, f64::max);
        for (is_global, out) in [
            (true, global_greedy(&inst)),
            (false, sequential_local_greedy(&inst)),
            (false, randomized_local_greedy(&inst, 3, 1)),
        ] {
            assert!(out.strategy.validate(&inst).is_ok(), "case {case}");
            assert!(
                (out.revenue - revenue(&inst, &out.strategy)).abs() < 1e-9,
                "case {case}: reported {} vs re-evaluated {}",
                out.revenue,
                revenue(&inst, &out.strategy)
            );
            assert!(out.revenue >= 0.0, "case {case}");
            // Only G-Greedy picks the globally best isolated triple first and
            // then never decreases the objective; the local greedy algorithms
            // can be trapped by the chronological order (Example 4).
            if is_global {
                assert!(
                    out.revenue + 1e-9 >= best_single,
                    "case {case}: greedy revenue {} below best isolated triple {best_single}",
                    out.revenue
                );
            }
        }
    }
}

/// Greedy never exceeds the exact optimum, and lazy-forward / heap-layout /
/// engine choices do not change the greedy result.
#[test]
fn greedy_below_optimum_and_invariant_to_internals() {
    let mut rng = StdRng::seed_from_u64(43);
    let mut checked = 0;
    for case in 0..60 {
        let inst = random_small_instance(&mut rng);
        if revmax_algorithms::candidate_triples(&inst).len() > 18 {
            continue;
        }
        checked += 1;
        let opt = exact_optimum(&inst, 18);
        let base = global_greedy(&inst);
        assert!(
            base.revenue <= opt.revenue + 1e-9,
            "case {case}: greedy beat the optimum"
        );
        let eager = plan(&inst, &PlannerConfig::default().with_lazy_forward(false));
        let giant = plan(&inst, &PlannerConfig::default().with_two_level_heaps(false));
        let hash = plan(
            &inst,
            &PlannerConfig::default().with_engine(EngineKind::Hash),
        );
        assert!(
            (base.revenue - eager.revenue).abs() < 1e-9,
            "case {case}: lazy != eager"
        );
        assert!(
            (base.revenue - giant.revenue).abs() < 1e-9,
            "case {case}: two-level != giant"
        );
        assert!(
            (base.revenue - hash.revenue).abs() < 1e-9,
            "case {case}: flat != hash engine"
        );
        assert!(
            base.marginal_evaluations <= eager.marginal_evaluations,
            "case {case}"
        );
    }
    assert!(
        checked >= 10,
        "generator produced too few small instances ({checked})"
    );
}

/// The parallel per-user scan and the sequential scan of local greedy produce
/// bit-identical revenues and identical strategies, for both engines.
#[test]
fn parallel_local_greedy_equals_sequential() {
    let mut rng = StdRng::seed_from_u64(47);
    for case in 0..30 {
        let inst = random_small_instance(&mut rng);
        let order: Vec<u32> = (1..=inst.horizon()).collect();
        for engine in [EngineKind::Flat, EngineKind::Hash] {
            let cfg = PlannerConfig::default().with_engine(engine);
            let seq = plan_order(&inst, &order, &cfg.with_parallel(Some(false)));
            let par = plan_order(&inst, &order, &cfg.with_parallel(Some(true)));
            assert_eq!(
                seq.revenue.to_bits(),
                par.revenue.to_bits(),
                "case {case} ({engine:?}): parallel scan changed the revenue"
            );
            assert_eq!(
                seq.strategy.as_slice(),
                par.strategy.as_slice(),
                "case {case} ({engine:?}): parallel scan changed the strategy"
            );
        }
    }
}

/// For T = 1 the Max-DCS solver is exact: no heuristic beats it, and its
/// weight equals the dynamic revenue of its strategy when k = 1.
#[test]
fn t1_max_dcs_upper_bounds_greedy() {
    let mut rng = StdRng::seed_from_u64(53);
    let mut checked = 0;
    for case in 0..80 {
        let inst = random_small_instance(&mut rng);
        if inst.horizon() != 1 {
            continue;
        }
        checked += 1;
        let exact = solve_t1_exact(&inst);
        let gg = global_greedy(&inst);
        assert!(
            gg.revenue <= exact.weight + 1e-6,
            "case {case}: greedy {} beat exact {}",
            gg.revenue,
            exact.weight
        );
        if inst.display_limit() == 1 {
            assert!(
                (exact.weight - revenue(&inst, &exact.strategy)).abs() < 1e-6,
                "case {case}"
            );
        }
    }
    assert!(
        checked >= 10,
        "generator produced too few T=1 instances ({checked})"
    );
}

/// Local search on R-REVMAX satisfies its 1/(4+ε) guarantee against the
/// exact R-REVMAX optimum.
#[test]
fn local_search_guarantee_holds() {
    let mut rng = StdRng::seed_from_u64(59);
    let mut checked = 0;
    for case in 0..60 {
        let inst = random_small_instance(&mut rng);
        let ground = revmax_algorithms::candidate_triples(&inst).len();
        if ground == 0 || ground > 12 {
            continue;
        }
        checked += 1;
        let ls = local_search_r_revmax(&inst, 1.0, 12);
        let (_, opt) = revmax_algorithms::exact_r_revmax_optimum(&inst, 12);
        assert!(
            ls.objective >= opt / 5.0 - 1e-9,
            "case {case}: local search {} below 1/5 of optimum {opt}",
            ls.objective
        );
        assert!(ls.objective <= opt + 1e-9, "case {case}");
    }
    assert!(
        checked >= 5,
        "generator produced too few tiny instances ({checked})"
    );
}

#[test]
fn generated_dataset_end_to_end_ranking() {
    // A deterministic end-to-end run on a generated dataset: the revenue-aware
    // dynamic algorithms must beat the static baselines, reproducing the
    // qualitative ranking of Figures 1–3.
    let mut config = DatasetConfig::tiny();
    config.num_users = 40;
    config.num_items = 25;
    config.candidates_per_user = 10;
    // Keep capacities loose relative to the user base, like the paper's setup
    // (5000 for 23K users): the baselines ignore capacity when selecting, so a
    // tightly capacity-bound instance would compare them unfairly against the
    // constraint-respecting algorithms.
    config.capacity = revmax_data::CapacityDistribution::Gaussian {
        mean: 30.0,
        std: 4.0,
    };
    let ds = generate(&config);
    let inst = &ds.instance;

    let gg = global_greedy(inst);
    let slg = sequential_local_greedy(inst);
    let rlg = randomized_local_greedy(inst, 8, 3);
    let rat = top_rating(inst);
    let rev_baseline = top_revenue(inst);

    assert!(gg.strategy.validate(inst).is_ok());
    assert!(slg.strategy.validate(inst).is_ok());
    assert!(rlg.strategy.validate(inst).is_ok());

    assert!(gg.revenue > 0.0);
    // GG and RLG are both near-optimal on such datasets; on individual
    // instances either can edge out the other by a hair, so compare with a 2%
    // band rather than strictly (the strict claims below are the qualitative
    // ranking of the paper: dynamic algorithms beat static baselines).
    assert!(
        gg.revenue >= rlg.revenue * 0.98 && rlg.revenue + 1e-9 >= slg.revenue * 0.999,
        "expected GG ≈≥ RLG ≥ SLG, got {} / {} / {}",
        gg.revenue,
        rlg.revenue,
        slg.revenue
    );
    assert!(
        gg.revenue > rev_baseline.revenue,
        "GG ({}) should beat TopRev ({})",
        gg.revenue,
        rev_baseline.revenue
    );
    assert!(
        gg.revenue > rat.revenue,
        "GG ({}) should beat TopRat ({})",
        gg.revenue,
        rat.revenue
    );
    assert!(
        rev_baseline.revenue > rat.revenue,
        "price-aware TopRev ({}) should beat TopRat ({})",
        rev_baseline.revenue,
        rat.revenue
    );
}

#[test]
fn runner_reports_are_consistent_with_direct_calls() {
    let mut config = DatasetConfig::tiny();
    config.num_users = 20;
    config.candidates_per_user = 6;
    let ds = generate(&config);
    let inst = &ds.instance;
    let report = run(inst, &Algorithm::GlobalGreedy, 0);
    let direct = global_greedy(inst);
    assert!((report.revenue - direct.revenue).abs() < 1e-9);
    assert_eq!(report.strategy_size, direct.strategy.len());
    assert_eq!(report.algorithm, "GG");
    assert!(report.elapsed.as_nanos() > 0);
}

#[test]
fn saturation_ablation_loses_revenue_on_saturated_datasets() {
    // With strong saturation (β = 0.1), ignoring it during selection should
    // cost revenue relative to the saturation-aware greedy (the point of the
    // GlobalNo comparison in Figure 2).
    let mut config = DatasetConfig::tiny();
    config.beta = revmax_data::BetaSetting::Fixed(0.1);
    config.num_users = 40;
    config.candidates_per_user = 8;
    let ds = generate(&config);
    let inst = &ds.instance;
    let aware = global_greedy(inst);
    let oblivious = revmax_algorithms::global_no_saturation(inst);
    assert!(
        aware.revenue + 1e-9 >= oblivious.revenue,
        "saturation-aware {} vs oblivious {}",
        aware.revenue,
        oblivious.revenue
    );
}

/// Engine-parity at scale for the shard-partitioned core: every randomized
/// instance also runs the sharded path with 1, 2, and 7 shards, for both
/// engines, and must match the sequential flat plan to 1e-9 — identical
/// strategies and revenue (the coordinator replays the sequential selection
/// order exactly; see `revmax_algorithms::sharded`).
#[test]
fn sharded_global_greedy_matches_sequential_at_1_2_7_shards() {
    let mut rng = StdRng::seed_from_u64(0x5AAD);
    for case in 0..40 {
        let inst = random_small_instance(&mut rng);
        let sequential = global_greedy(&inst);
        for shards in [1usize, 2, 7] {
            for engine in [EngineKind::Flat, EngineKind::Hash] {
                let cfg = PlannerConfig::default().with_engine(engine);
                let sharded = sharded_plan(&inst, &cfg, shards);
                assert!(
                    (sharded.revenue - sequential.revenue).abs() < 1e-9,
                    "case {case} ({shards} shards, {engine:?}): sharded {} vs sequential {}",
                    sharded.revenue,
                    sequential.revenue
                );
                assert_eq!(
                    sharded.strategy.len(),
                    sequential.strategy.len(),
                    "case {case} ({shards} shards, {engine:?}): strategy sizes diverged"
                );
                for z in sequential.strategy.iter() {
                    assert!(
                        sharded.strategy.contains(z),
                        "case {case} ({shards} shards, {engine:?}): {z} missing from sharded plan"
                    );
                }
                assert!(sharded.strategy.validate(&inst).is_ok(), "case {case}");
            }
        }
    }
}

/// The same parity for the sharded per-time-step local greedy, including
/// partial orders.
#[test]
fn sharded_local_greedy_matches_sequential_at_1_2_7_shards() {
    let mut rng = StdRng::seed_from_u64(0x5AAE);
    for case in 0..30 {
        let inst = random_small_instance(&mut rng);
        let full_order: Vec<u32> = (1..=inst.horizon()).collect();
        let partial_order: Vec<u32> = full_order.iter().copied().rev().take(2).collect();
        for order in [&full_order, &partial_order] {
            let cfg = PlannerConfig::default().with_parallel(Some(false));
            let sequential = plan_order(&inst, order, &cfg);
            for shards in [1usize, 2, 7] {
                let sharded = sharded_plan_order(&inst, order, &cfg, shards);
                assert!(
                    (sharded.revenue - sequential.revenue).abs() < 1e-9,
                    "case {case} ({shards} shards): sharded {} vs sequential {}",
                    sharded.revenue,
                    sequential.revenue
                );
                assert_eq!(sharded.strategy.len(), sequential.strategy.len());
                for z in sequential.strategy.iter() {
                    assert!(sharded.strategy.contains(z), "case {case}: {z} missing");
                }
            }
        }
    }
}

/// Sharding through the unified front-end (`PlannerConfig::shards`) is
/// equivalent to the explicit sharded entry points.
#[test]
fn shards_option_routes_through_public_apis() {
    let mut rng = StdRng::seed_from_u64(0x5AAF);
    let inst = random_small_instance(&mut rng);
    let base = global_greedy(&inst);
    let via_cfg = plan(&inst, &PlannerConfig::default().with_shards(3));
    assert!((base.revenue - via_cfg.revenue).abs() < 1e-9);
    assert_eq!(base.strategy.len(), via_cfg.strategy.len());

    let slg = sequential_local_greedy(&inst);
    let slg_sharded = plan(
        &inst,
        &PlannerConfig::default()
            .with_algorithm(PlanAlgorithm::SequentialLocalGreedy)
            .with_shards(3),
    );
    assert!((slg.revenue - slg_sharded.revenue).abs() < 1e-9);
}

/// The indexed d-ary decrease-key heap and the lazy-deletion heap drive the
/// greedy algorithms to bit-identical plans.
#[test]
fn heap_kinds_produce_identical_plans() {
    let mut rng = StdRng::seed_from_u64(0x0EA9);
    for case in 0..40 {
        let inst = random_small_instance(&mut rng);
        for two_level in [true, false] {
            let base = PlannerConfig::default().with_two_level_heaps(two_level);
            let lazy = plan(&inst, &base.with_heap(HeapKind::Lazy));
            let dary = plan(&inst, &base.with_heap(HeapKind::IndexedDary));
            assert_eq!(
                lazy.revenue.to_bits(),
                dary.revenue.to_bits(),
                "case {case} (two_level {two_level}): heaps diverged: {} vs {}",
                lazy.revenue,
                dary.revenue
            );
            assert_eq!(lazy.strategy.as_slice(), dary.strategy.as_slice());
            assert_eq!(lazy.marginal_evaluations, dary.marginal_evaluations);
        }
        let order: Vec<u32> = (1..=inst.horizon()).collect();
        let slg_lazy = plan_order(
            &inst,
            &order,
            &PlannerConfig::default().with_heap(HeapKind::Lazy),
        );
        let slg_dary = plan_order(
            &inst,
            &order,
            &PlannerConfig::default().with_heap(HeapKind::IndexedDary),
        );
        assert_eq!(slg_lazy.revenue.to_bits(), slg_dary.revenue.to_bits());
        assert_eq!(slg_lazy.strategy.as_slice(), slg_dary.strategy.as_slice());
    }
}

/// Sharded parity on a generated dataset with binding capacities: the
/// acceptance-shaped check (a scaled-down analogue of
/// `amazon_like().scaled(0.02)`, where ~half the items end at capacity).
#[test]
fn sharded_matches_sequential_on_capacity_bound_dataset() {
    let mut config = DatasetConfig::tiny();
    config.num_users = 60;
    config.num_items = 20;
    config.candidates_per_user = 10;
    config.capacity = revmax_data::CapacityDistribution::Gaussian {
        mean: 12.0,
        std: 3.0,
    };
    let ds = generate(&config);
    let sequential = global_greedy(&ds.instance);
    for shards in [2usize, 4] {
        let sharded = sharded_plan(&ds.instance, &PlannerConfig::default(), shards);
        assert!(
            (sharded.revenue - sequential.revenue).abs()
                <= 1e-9 * sequential.revenue.abs().max(1.0),
            "{shards} shards: {} vs {}",
            sharded.revenue,
            sequential.revenue
        );
        assert_eq!(sharded.strategy.len(), sequential.strategy.len());
        for z in sequential.strategy.iter() {
            assert!(sharded.strategy.contains(z));
        }
    }
}

/// G-Greedy on a mid-size generated dataset: flat and hash engines must pick
/// identical strategies (the refactor changes speed, not behaviour).
#[test]
fn engines_agree_on_generated_dataset() {
    let mut config = DatasetConfig::tiny();
    config.num_users = 50;
    config.num_items = 30;
    config.candidates_per_user = 12;
    let ds = generate(&config);
    let flat = plan(&ds.instance, &PlannerConfig::default());
    let hash = plan(
        &ds.instance,
        &PlannerConfig::default().with_engine(EngineKind::Hash),
    );
    assert!((flat.revenue - hash.revenue).abs() < 1e-9);
    assert_eq!(flat.strategy.len(), hash.strategy.len());
    for z in flat.strategy.iter() {
        assert!(hash.strategy.contains(z), "strategies diverged at {z}");
    }
}

/// The deprecated pre-unification entry points (`GreedyOptions`,
/// `LocalGreedyOptions`, and their `*_with` / sharded functions) still
/// compile and produce plans identical to the unified `plan` /
/// `PlannerConfig` surface — the backward-compatibility acceptance check of
/// the API redesign.
#[test]
#[allow(deprecated)]
fn deprecated_entry_points_match_the_unified_surface() {
    use revmax_algorithms::{
        global_greedy_with, local_greedy_with_order_opts, sharded_global_greedy,
        sharded_local_greedy, GreedyOptions, LocalGreedyOptions,
    };
    let mut rng = StdRng::seed_from_u64(0xDE9);
    for case in 0..20 {
        let inst = random_small_instance(&mut rng);
        for engine in [EngineKind::Flat, EngineKind::Hash] {
            let cfg = PlannerConfig::default().with_engine(engine);
            let new = plan(&inst, &cfg);
            let old = global_greedy_with(
                &inst,
                &GreedyOptions {
                    engine,
                    ..Default::default()
                },
            );
            assert_eq!(
                new.revenue.to_bits(),
                old.revenue.to_bits(),
                "case {case} ({engine:?}): deprecated G-Greedy diverged"
            );
            assert_eq!(new.strategy.as_slice(), old.strategy.as_slice());

            let order: Vec<u32> = (1..=inst.horizon()).collect();
            let new_local = plan_order(&inst, &order, &cfg);
            let old_local = local_greedy_with_order_opts(
                &inst,
                &order,
                &LocalGreedyOptions {
                    engine,
                    ..Default::default()
                },
            );
            assert_eq!(new_local.revenue.to_bits(), old_local.revenue.to_bits());
            assert_eq!(new_local.strategy.as_slice(), old_local.strategy.as_slice());

            let new_sharded = sharded_plan(&inst, &cfg, 2);
            let old_sharded = sharded_global_greedy(
                &inst,
                &GreedyOptions {
                    engine,
                    ..Default::default()
                },
                2,
            );
            assert_eq!(new_sharded.revenue.to_bits(), old_sharded.revenue.to_bits());
            assert_eq!(
                new_sharded.strategy.as_slice(),
                old_sharded.strategy.as_slice()
            );

            let old_sharded_local = sharded_local_greedy(
                &inst,
                &order,
                &LocalGreedyOptions {
                    engine,
                    ..Default::default()
                },
                2,
            );
            let new_sharded_local = sharded_plan_order(&inst, &order, &cfg, 2);
            assert_eq!(
                new_sharded_local.revenue.to_bits(),
                old_sharded_local.revenue.to_bits()
            );
        }
    }
}

/// `GreedyOptions::from_env` (deprecated) and `PlannerConfig::from_env` read
/// the same environment knobs; this also pins the layered `env_overlay`
/// behaviour. Runs in one test to avoid racing on process-global state.
#[test]
#[allow(deprecated)]
fn env_layering_reads_the_shared_knobs() {
    use revmax_algorithms::GreedyOptions;
    std::env::set_var("REVMAX_ENGINE", "hash");
    std::env::set_var("REVMAX_HEAP", "dary");
    std::env::set_var("REVMAX_SHARDS", "3");
    std::env::set_var("REVMAX_SEED", "99");

    let cfg = PlannerConfig::from_env();
    assert_eq!(cfg.engine, EngineKind::Hash);
    assert_eq!(cfg.heap, HeapKind::IndexedDary);
    assert_eq!(cfg.shards, 3);
    assert_eq!(cfg.seed, 99);

    let old = GreedyOptions::from_env();
    assert_eq!(old.engine, EngineKind::Hash);
    assert_eq!(old.heap, HeapKind::IndexedDary);
    assert_eq!(old.shards, 3);

    // Layering: the overlay only replaces knobs that are actually set.
    std::env::remove_var("REVMAX_ENGINE");
    let layered = PlannerConfig::default()
        .with_engine(EngineKind::Hash)
        .with_track_trace(true)
        .env_overlay();
    assert_eq!(layered.engine, EngineKind::Hash, "unset knob preserved");
    assert_eq!(layered.shards, 3, "set knob overlaid");
    assert!(layered.track_trace, "non-env knob untouched");

    std::env::remove_var("REVMAX_HEAP");
    std::env::remove_var("REVMAX_SHARDS");
    std::env::remove_var("REVMAX_SEED");
}

/// `plan` dispatches every algorithm variant to the same implementation as
/// the dedicated convenience functions.
#[test]
fn unified_plan_matches_dedicated_entry_points() {
    let mut rng = StdRng::seed_from_u64(0xD15);
    for _ in 0..10 {
        let inst = random_small_instance(&mut rng);
        let gg = plan(&inst, &PlannerConfig::default());
        assert_eq!(gg.revenue.to_bits(), global_greedy(&inst).revenue.to_bits());
        let slg = plan(
            &inst,
            &PlannerConfig::default().with_algorithm(PlanAlgorithm::SequentialLocalGreedy),
        );
        assert_eq!(
            slg.revenue.to_bits(),
            sequential_local_greedy(&inst).revenue.to_bits()
        );
        let rlg = plan(
            &inst,
            &PlannerConfig::default()
                .with_algorithm(PlanAlgorithm::RandomizedLocalGreedy { permutations: 3 })
                .with_seed(7),
        );
        assert_eq!(
            rlg.revenue.to_bits(),
            randomized_local_greedy(&inst, 3, 7).revenue.to_bits()
        );
        let no_sat = plan(
            &inst,
            &PlannerConfig::default().with_algorithm(PlanAlgorithm::GlobalNoSaturation),
        );
        let no_sat_direct = revmax_algorithms::global_no_saturation(&inst);
        // The true-revenue re-evaluation sums hash-grouped terms, so two
        // identical runs may differ in float summation order: compare to 1e-9.
        assert!((no_sat.revenue - no_sat_direct.revenue).abs() < 1e-9);
        assert_eq!(
            no_sat.strategy.as_slice(),
            no_sat_direct.strategy.as_slice()
        );
    }
}

/// The saturation-aggregate knob is behaviour-neutral: on a uniform-β
/// generated dataset (where the fast path engages on every group) and on
/// random mixed-β instances (where it falls back per group), `Aggregates::Off`
/// and the default `Auto` produce the same plan for both engines at shard
/// counts 1 and 2, for the global and the per-time-step drivers.
#[test]
fn aggregates_knob_is_behaviour_neutral_across_engines_and_shards() {
    use revmax_algorithms::Aggregates;

    let mut uniform = DatasetConfig::tiny();
    uniform.beta = revmax_data::BetaSetting::PerClassRandom;
    let uniform_ds = generate(&uniform);
    assert!(uniform_ds.instance.all_beta_uniform());

    let mut rng = StdRng::seed_from_u64(0xA667);
    let mut instances: Vec<Instance> = (0..6).map(|_| random_small_instance(&mut rng)).collect();
    instances.push(uniform_ds.instance);

    for (idx, inst) in instances.iter().enumerate() {
        for engine in [EngineKind::Flat, EngineKind::Hash] {
            for shards in [1u32, 2] {
                let base = PlannerConfig::default()
                    .with_engine(engine)
                    .with_shards(shards);
                let on = plan(inst, &base.with_aggregates(Aggregates::Auto));
                let off = plan(inst, &base.with_aggregates(Aggregates::Off));
                assert!(
                    (on.revenue - off.revenue).abs() <= 1e-9 * off.revenue.abs().max(1.0),
                    "case {idx} {engine:?} shards {shards}: GG {} vs {}",
                    on.revenue,
                    off.revenue
                );
                assert_eq!(on.strategy.len(), off.strategy.len());
                for z in on.strategy.iter() {
                    assert!(off.strategy.contains(z), "case {idx}: diverged at {z}");
                }

                let order: Vec<u32> = (1..=inst.horizon()).collect();
                let on = plan_order(inst, &order, &base.with_aggregates(Aggregates::Auto));
                let off = plan_order(inst, &order, &base.with_aggregates(Aggregates::Off));
                assert!(
                    (on.revenue - off.revenue).abs() <= 1e-9 * off.revenue.abs().max(1.0),
                    "case {idx} {engine:?} shards {shards}: SLG {} vs {}",
                    on.revenue,
                    off.revenue
                );
                assert_eq!(on.strategy.len(), off.strategy.len());
            }
        }
    }
}
