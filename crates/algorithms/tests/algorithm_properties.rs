//! Cross-cutting property and integration tests for the algorithm suite:
//! greedy validity and quality against the exact optimum on tiny instances,
//! the Max-DCS upper bound for `T = 1`, the local-search guarantee, and
//! end-to-end runs on generated datasets.

use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use revmax_algorithms::{
    exact_optimum, global_greedy, global_greedy_with, local_search_r_revmax,
    randomized_local_greedy, run, sequential_local_greedy, solve_t1_exact, top_rating,
    top_revenue, Algorithm, GreedyOptions,
};
use revmax_core::{revenue, Instance, InstanceBuilder};
use revmax_data::{generate, DatasetConfig};

/// Raw material for a random small instance.
#[derive(Debug, Clone)]
struct SmallInstance {
    num_users: u32,
    num_items: u32,
    horizon: u32,
    display_limit: u32,
    classes: Vec<u32>,
    betas: Vec<f64>,
    capacities: Vec<u32>,
    prices: Vec<Vec<f64>>,
    probs: Vec<Vec<f64>>,
}

impl SmallInstance {
    fn build(&self) -> Instance {
        let mut b = InstanceBuilder::new(self.num_users, self.num_items, self.horizon);
        b.display_limit(self.display_limit);
        for item in 0..self.num_items as usize {
            b.item_class(item as u32, self.classes[item]);
            b.beta(item as u32, self.betas[item]);
            b.capacity(item as u32, self.capacities[item]);
            b.prices(item as u32, &self.prices[item]);
        }
        for user in 0..self.num_users as usize {
            for item in 0..self.num_items as usize {
                let probs = &self.probs[user * self.num_items as usize + item];
                if probs.iter().any(|&p| p > 0.0) {
                    b.candidate(user as u32, item as u32, probs, probs[0] * 5.0);
                }
            }
        }
        b.build().expect("random instance must build")
    }
}

fn small_instances() -> impl proptest::strategy::Strategy<Value = SmallInstance> {
    (2u32..=3, 2u32..=4, 1u32..=3, 1u32..=2).prop_flat_map(|(nu, ni, t, k)| {
        let pairs = (nu * ni) as usize;
        (
            proptest::collection::vec(0u32..2, ni as usize),
            proptest::collection::vec(0.0f64..=1.0, ni as usize),
            proptest::collection::vec(1u32..=3, ni as usize),
            proptest::collection::vec(proptest::collection::vec(1.0f64..30.0, t as usize), ni as usize),
            proptest::collection::vec(proptest::collection::vec(0.0f64..=1.0, t as usize), pairs),
        )
            .prop_map(move |(classes, betas, capacities, prices, probs)| SmallInstance {
                num_users: nu,
                num_items: ni,
                horizon: t,
                display_limit: k,
                classes,
                betas,
                capacities,
                prices,
                probs,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every greedy algorithm emits a valid strategy whose reported revenue
    /// matches an independent re-evaluation, and the first greedy pick means
    /// revenue at least matches the best isolated triple.
    #[test]
    fn greedy_outputs_are_valid_and_consistent(si in small_instances()) {
        let inst = si.build();
        let best_single = revmax_algorithms::candidate_triples(&inst)
            .into_iter()
            .map(|z| inst.isolated_revenue(z))
            .fold(0.0, f64::max);
        for (is_global, out) in [
            (true, global_greedy(&inst)),
            (false, sequential_local_greedy(&inst)),
            (false, randomized_local_greedy(&inst, 3, 1)),
        ] {
            prop_assert!(out.strategy.validate(&inst).is_ok());
            prop_assert!((out.revenue - revenue(&inst, &out.strategy)).abs() < 1e-9);
            prop_assert!(out.revenue >= 0.0);
            // Only G-Greedy picks the globally best isolated triple first and
            // then never decreases the objective; the local greedy algorithms
            // can be trapped by the chronological order (Example 4).
            if is_global {
                prop_assert!(out.revenue + 1e-9 >= best_single,
                    "greedy revenue {} below best isolated triple {}", out.revenue, best_single);
            }
        }
    }

    /// Greedy never exceeds the exact optimum, and lazy-forward / heap-layout
    /// choices do not change the greedy result.
    #[test]
    fn greedy_below_optimum_and_invariant_to_internals(si in small_instances()) {
        let inst = si.build();
        if revmax_algorithms::candidate_triples(&inst).len() > 18 {
            return Ok(());
        }
        let opt = exact_optimum(&inst, 18);
        let base = global_greedy(&inst);
        prop_assert!(base.revenue <= opt.revenue + 1e-9);
        let eager = global_greedy_with(&inst, &GreedyOptions { lazy_forward: false, ..Default::default() });
        let giant = global_greedy_with(&inst, &GreedyOptions { two_level_heaps: false, ..Default::default() });
        prop_assert!((base.revenue - eager.revenue).abs() < 1e-9);
        prop_assert!((base.revenue - giant.revenue).abs() < 1e-9);
        prop_assert!(base.marginal_evaluations <= eager.marginal_evaluations);
    }

    /// For T = 1 the Max-DCS solver is exact: no heuristic beats it, and its
    /// weight equals the dynamic revenue of its strategy when k = 1.
    #[test]
    fn t1_max_dcs_upper_bounds_greedy(si in small_instances()) {
        if si.horizon != 1 {
            return Ok(());
        }
        let inst = si.build();
        let exact = solve_t1_exact(&inst);
        let gg = global_greedy(&inst);
        prop_assert!(gg.revenue <= exact.weight + 1e-6);
        if si.display_limit == 1 {
            prop_assert!((exact.weight - revenue(&inst, &exact.strategy)).abs() < 1e-6);
        }
    }

    /// Local search on R-REVMAX satisfies its 1/(4+ε) guarantee against the
    /// exact R-REVMAX optimum.
    #[test]
    fn local_search_guarantee_holds(si in small_instances()) {
        let inst = si.build();
        let ground = revmax_algorithms::candidate_triples(&inst).len();
        if ground == 0 || ground > 12 {
            return Ok(());
        }
        let ls = local_search_r_revmax(&inst, 1.0, 12);
        let (_, opt) = revmax_algorithms::exact_r_revmax_optimum(&inst, 12);
        prop_assert!(ls.objective >= opt / 5.0 - 1e-9,
            "local search {} below 1/5 of optimum {}", ls.objective, opt);
        prop_assert!(ls.objective <= opt + 1e-9);
    }
}

#[test]
fn generated_dataset_end_to_end_ranking() {
    // A deterministic end-to-end run on a generated dataset: the revenue-aware
    // dynamic algorithms must beat the static baselines, reproducing the
    // qualitative ranking of Figures 1–3.
    let mut config = DatasetConfig::tiny();
    config.num_users = 40;
    config.num_items = 25;
    config.candidates_per_user = 10;
    // Keep capacities loose relative to the user base, like the paper's setup
    // (5000 for 23K users): the baselines ignore capacity when selecting, so a
    // tightly capacity-bound instance would compare them unfairly against the
    // constraint-respecting algorithms.
    config.capacity = revmax_data::CapacityDistribution::Gaussian { mean: 30.0, std: 4.0 };
    let ds = generate(&config);
    let inst = &ds.instance;

    let gg = global_greedy(inst);
    let slg = sequential_local_greedy(inst);
    let rlg = randomized_local_greedy(inst, 8, 3);
    let rat = top_rating(inst);
    let rev_baseline = top_revenue(inst);

    assert!(gg.strategy.validate(inst).is_ok());
    assert!(slg.strategy.validate(inst).is_ok());
    assert!(rlg.strategy.validate(inst).is_ok());

    assert!(gg.revenue > 0.0);
    assert!(
        gg.revenue + 1e-9 >= rlg.revenue && rlg.revenue + 1e-9 >= slg.revenue * 0.999,
        "expected GG ≥ RLG ≥ SLG, got {} / {} / {}",
        gg.revenue,
        rlg.revenue,
        slg.revenue
    );
    assert!(
        gg.revenue > rev_baseline.revenue,
        "GG ({}) should beat TopRev ({})",
        gg.revenue,
        rev_baseline.revenue
    );
    assert!(
        gg.revenue > rat.revenue,
        "GG ({}) should beat TopRat ({})",
        gg.revenue,
        rat.revenue
    );
    assert!(
        rev_baseline.revenue > rat.revenue,
        "price-aware TopRev ({}) should beat TopRat ({})",
        rev_baseline.revenue,
        rat.revenue
    );
}

#[test]
fn runner_reports_are_consistent_with_direct_calls() {
    let mut config = DatasetConfig::tiny();
    config.num_users = 20;
    config.candidates_per_user = 6;
    let ds = generate(&config);
    let inst = &ds.instance;
    let report = run(inst, &Algorithm::GlobalGreedy, 0);
    let direct = global_greedy(inst);
    assert!((report.revenue - direct.revenue).abs() < 1e-9);
    assert_eq!(report.strategy_size, direct.strategy.len());
    assert_eq!(report.algorithm, "GG");
    assert!(report.elapsed.as_nanos() > 0);
}

#[test]
fn saturation_ablation_loses_revenue_on_saturated_datasets() {
    // With strong saturation (β = 0.1), ignoring it during selection should
    // cost revenue relative to the saturation-aware greedy (the point of the
    // GlobalNo comparison in Figure 2).
    let mut config = DatasetConfig::tiny();
    config.beta = revmax_data::BetaSetting::Fixed(0.1);
    config.num_users = 40;
    config.candidates_per_user = 8;
    let ds = generate(&config);
    let inst = &ds.instance;
    let aware = global_greedy(inst);
    let oblivious = revmax_algorithms::global_no_saturation(inst);
    assert!(
        aware.revenue + 1e-9 >= oblivious.revenue,
        "saturation-aware {} vs oblivious {}",
        aware.revenue,
        oblivious.revenue
    );
}
