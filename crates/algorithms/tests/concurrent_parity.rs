//! Parity oracle for the concurrent shard executor
//! (`PlannerConfig::shard_threads >= 2`): every configuration of engine ×
//! shard count × worker-thread count must reproduce the sequential plan —
//! same strategy triple set, same revenue to 1e-9 — plus directed tests for
//! the rollback (steal/reject) path and the scarcity-window boundary.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revmax_algorithms::{plan, EngineKind, PlannerConfig};
use revmax_core::{env, Instance, InstanceBuilder};

/// Worker-thread counts under test: {1, 2, 4} plus any `REVMAX_SHARD_THREADS`
/// override — the CI multi-core matrix leg re-runs the oracle with its
/// per-leg thread count folded in.
fn thread_counts() -> Vec<u32> {
    let mut counts = vec![1u32, 2, 4];
    if let Some(t) = env::var_with("REVMAX_SHARD_THREADS", |s| {
        s.parse::<u32>().ok().filter(|&t| t > 0)
    }) {
        if !counts.contains(&t) {
            counts.push(t);
        }
    }
    counts
}

/// Draws a random instance sized to make item capacity actually contended
/// (users ≥ items, capacities small), so scarce-window arbitration runs on
/// a meaningful fraction of cases rather than only the fast path.
fn random_contended_instance(rng: &mut StdRng) -> Instance {
    let num_users = rng.gen_range(3u32..=8);
    let num_items = rng.gen_range(2u32..=5);
    let horizon = rng.gen_range(1u32..=3);
    let mut b = InstanceBuilder::new(num_users, num_items, horizon);
    b.display_limit(rng.gen_range(1u32..=2));
    for item in 0..num_items {
        b.item_class(item, rng.gen_range(0u32..2));
        b.beta(item, rng.gen_range(0.0..=1.0));
        b.capacity(item, rng.gen_range(1u32..=3));
        let prices: Vec<f64> = (0..horizon).map(|_| rng.gen_range(1.0..30.0)).collect();
        b.prices(item, &prices);
    }
    for user in 0..num_users {
        for item in 0..num_items {
            if rng.gen_bool(0.8) {
                let probs: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.0..=1.0)).collect();
                if probs.iter().any(|&p| p > 0.0) {
                    b.candidate(user, item, &probs, probs[0] * 5.0);
                }
            }
        }
    }
    b.build().expect("random instance must build")
}

fn assert_same_plan(
    case: &str,
    seq: &revmax_algorithms::GreedyOutcome,
    conc: &revmax_algorithms::GreedyOutcome,
) {
    assert!(
        (seq.revenue - conc.revenue).abs() < 1e-9,
        "{case}: revenue {} vs sequential {}",
        conc.revenue,
        seq.revenue
    );
    assert!(
        (seq.selection_objective - conc.selection_objective).abs() < 1e-9,
        "{case}: objective {} vs sequential {}",
        conc.selection_objective,
        seq.selection_objective
    );
    assert_eq!(
        seq.strategy.len(),
        conc.strategy.len(),
        "{case}: strategy sizes diverged"
    );
    for z in seq.strategy.iter() {
        assert!(
            conc.strategy.contains(z),
            "{case}: {z} missing from concurrent plan"
        );
    }
}

/// The randomized oracle: ≥120 contended instances across engines × shards
/// {1, 2, 4, 8} × threads {1, 2, 4}. Thread counts above the shard count
/// and single-shard / single-thread configurations resolve to the
/// sequential arbitration — those rows pin the no-regression contract; the
/// rest exercise the concurrent executor proper.
#[test]
fn concurrent_executor_matches_sequential_plans() {
    let mut rng = StdRng::seed_from_u64(0xC0CC);
    let thread_counts = thread_counts();
    for case in 0..120 {
        let inst = random_contended_instance(&mut rng);
        for engine in [EngineKind::Flat, EngineKind::Hash] {
            let seq = plan(&inst, &PlannerConfig::default().with_engine(engine));
            for shards in [1u32, 2, 4, 8] {
                for &threads in &thread_counts {
                    let cfg = PlannerConfig::default()
                        .with_engine(engine)
                        .with_shards(shards)
                        .with_shard_threads(threads);
                    let conc = plan(&inst, &cfg);
                    let label =
                        format!("case {case} ({engine:?}, {shards} shards, {threads} threads)");
                    assert_same_plan(&label, &seq, &conc);
                }
            }
        }
    }
}

/// An adversarial rollback instance: one hot item with capacity 1 that
/// every user values most. Every shard's first proposal targets the hot
/// item; the sequentially leading one is admitted and — because its unit
/// may have been speculatively granted to a later shard — the steal path
/// (claim, then release on reject) runs before every other shard's
/// proposal is rejected.
#[test]
fn every_losing_shards_first_proposal_is_rejected() {
    let users = 4u32;
    let mut b = InstanceBuilder::new(users, 2, 1);
    b.display_limit(1);
    // Hot item: capacity 1, top value for everyone.
    b.capacity(0, 1).constant_price(0, 100.0);
    // Filler item: abundant, lower value.
    b.capacity(1, users).constant_price(1, 10.0);
    for user in 0..users {
        b.candidate(user, 0, &[0.9], 0.0);
        b.candidate(user, 1, &[0.5], 0.0);
    }
    let inst = b.build().unwrap();

    let seq = plan(&inst, &PlannerConfig::default());
    let cfg = PlannerConfig::default()
        .with_shards(users)
        .with_shard_threads(users);
    let conc = plan(&inst, &cfg);
    assert_same_plan("rollback", &seq, &conc);

    let stats = &conc.concurrency;
    assert!(
        stats.worker_threads >= 2,
        "executor must actually run concurrent"
    );
    assert_eq!(
        stats.rejected_moves,
        (users - 1) as u64,
        "every shard but the winner is rejected on the hot item"
    );
    assert!(
        stats.arbitrated_moves >= users as u64,
        "each shard's hot-item proposal goes through arbitration"
    );
    assert!(
        stats.fast_path_moves > 0,
        "the filler item commits through the abundant fast path"
    );
}

/// Scarcity-window boundary: capacity exactly equal to demand is abundant
/// (`demand <= cap - used` holds with equality at the start), so no move
/// needs arbitration and the whole plan commits lock-free.
#[test]
fn capacity_equal_to_demand_stays_on_the_fast_path() {
    let users = 4u32;
    let mut b = InstanceBuilder::new(users, 1, 1);
    b.display_limit(1);
    b.capacity(0, users).constant_price(0, 10.0);
    for user in 0..users {
        b.candidate(user, 0, &[0.7], 0.0);
    }
    let inst = b.build().unwrap();

    let seq = plan(&inst, &PlannerConfig::default());
    let cfg = PlannerConfig::default()
        .with_shards(users)
        .with_shard_threads(2);
    let conc = plan(&inst, &cfg);
    assert_same_plan("boundary", &seq, &conc);

    let stats = &conc.concurrency;
    assert_eq!(
        stats.arbitrated_moves, 0,
        "capacity == demand never enters the scarce window"
    );
    assert_eq!(stats.fast_path_moves, users as u64);
    assert!((conc.concurrency.scarce_occupancy() - 0.0).abs() < 1e-12);
}
