//! Seeded randomized suite for exempt-aware residual capacity (PR 4).
//!
//! For ≥ 100 random instances with realized event prefixes it asserts:
//!
//! * **Exempt ≥ conservative.** The exact residual semantics
//!   ([`ResidualMode::Exempt`]) strictly enlarge the feasible set — every
//!   conservative-valid plan is exempt-valid (asserted per case) — so the
//!   exempt **optimum** dominates the conservative optimum; the
//!   `exact_optimum_dominates` test asserts that per case on tiny
//!   residuals. The *greedy* planner converts the extra freedom into at
//!   least as much revenue on almost every tested instance; like the
//!   Theorem-2 lazy-forward caveat, greedy is not theoretically monotone
//!   under constraint loosening and a small measured fraction of cases
//!   (≈ 1% here, bounded below) trade up to ~1% of revenue — the suite
//!   pins both the frequency and the magnitude so a real regression
//!   (systematic loss) still fails loudly.
//! * **Flat == hash on residual instances.** Both engines agree to 1e-9
//!   (identical suffixes) on exempt-mode residuals, i.e. the exemption
//!   checks are engine-invariant.
//! * **Incremental == from-scratch.** `residual_advance` reproduces
//!   `residual_of_validated` bit for bit (probabilities, capacities, exempt
//!   sets) across random two-batch histories.
//! * **Validity both ways.** Every planned suffix validates against its own
//!   residual instance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revmax_algorithms::{plan, EngineKind, PlannerConfig};
use revmax_core::{
    residual_advance, residual_of_validated, residual_of_validated_with, validate_events,
    AdoptionEvent, EngineSnapshot, Instance, InstanceBuilder, ItemId, ResidualDelta, ResidualMode,
};

/// A storefront-shaped instance with tight capacities (1–3 over 3–5 users),
/// so prefix displays regularly pin items at residual capacity 0 and the
/// exempt-vs-conservative distinction actually binds.
fn random_instance(rng: &mut StdRng) -> Instance {
    let num_users = rng.gen_range(3u32..=5);
    let num_items = rng.gen_range(3u32..=6);
    let horizon = rng.gen_range(3u32..=5);
    let num_classes = rng.gen_range(2u32..=3);
    let mut b = InstanceBuilder::new(num_users, num_items, horizon);
    b.display_limit(rng.gen_range(1u32..=2));
    for item in 0..num_items {
        b.item_class(item, rng.gen_range(0..num_classes));
        b.beta(item, rng.gen_range(0.2..=1.0));
        b.capacity(item, rng.gen_range(1u32..=3));
        let prices: Vec<f64> = (0..horizon).map(|_| rng.gen_range(5.0..50.0)).collect();
        b.prices(item, &prices);
    }
    for user in 0..num_users {
        for item in 0..num_items {
            if rng.gen_bool(0.75) {
                let probs: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.05..0.8)).collect();
                b.candidate(user, item, &probs, probs[0] * 5.0);
            }
        }
    }
    b.build().expect("random instance must build")
}

/// Draws a valid random event prefix up to `now`: per (user, t) slot at most
/// `display_limit` distinct items, random adoption outcomes.
fn random_events(rng: &mut StdRng, inst: &Instance, now: u32) -> Vec<AdoptionEvent> {
    let mut events = Vec::new();
    for t in 1..=now {
        for user in 0..inst.num_users() {
            let mut shown: Vec<u32> = Vec::new();
            for _slot in 0..inst.display_limit() {
                if !rng.gen_bool(0.7) {
                    continue;
                }
                let item = rng.gen_range(0..inst.num_items());
                if shown.contains(&item) {
                    continue;
                }
                shown.push(item);
                let adopted = rng.gen_bool(0.3);
                events.push(if adopted {
                    AdoptionEvent::adopted(user, item, t)
                } else {
                    AdoptionEvent::rejected(user, item, t)
                });
            }
        }
    }
    assert!(validate_events(inst, &events, now).is_ok());
    events
}

#[test]
fn exempt_mode_dominates_conservative_and_engines_agree() {
    let mut rng = StdRng::seed_from_u64(0x5eed_2024);
    let mut binding_cases = 0u32;
    let mut greedy_losses: Vec<(u32, f64)> = Vec::new();
    let mut exempt_total = 0.0f64;
    let mut conservative_total = 0.0f64;
    for case in 0..120u32 {
        let inst = random_instance(&mut rng);
        let now = rng.gen_range(1..inst.horizon());
        let events = random_events(&mut rng, &inst, now);

        let exempt = residual_of_validated(&inst, &events, now);
        let conservative =
            residual_of_validated_with(&inst, &events, now, ResidualMode::Conservative);
        if exempt.has_exemptions() {
            binding_cases += 1;
        }

        let flat_cfg = PlannerConfig::default();
        let exempt_flat = plan(&exempt, &flat_cfg);
        let conservative_flat = plan(&conservative, &flat_cfg);
        assert!(
            exempt_flat.strategy.validate(&exempt).is_ok(),
            "case {case}: exempt plan invalid"
        );
        assert!(
            conservative_flat.strategy.validate(&conservative).is_ok(),
            "case {case}: conservative plan invalid"
        );
        // The sound containment, asserted unconditionally: every
        // conservative-valid plan is exempt-valid (exemptions only relax
        // the capacity constraint), so the exempt optimum dominates.
        assert!(
            conservative_flat.strategy.validate(&exempt).is_ok(),
            "case {case}: conservative plan must stay exempt-valid"
        );
        // Greedy dominance: near-universal, bounded below. A violation is
        // greedy non-monotonicity under constraint loosening (cousin of
        // the Theorem-2 caveat), not an accounting bug — but it must stay
        // rare and small, and never dominate in aggregate.
        exempt_total += exempt_flat.revenue;
        conservative_total += conservative_flat.revenue;
        if exempt_flat.revenue < conservative_flat.revenue - 1e-9 {
            let relative =
                (conservative_flat.revenue - exempt_flat.revenue) / conservative_flat.revenue;
            greedy_losses.push((case, relative));
        }

        // Engine parity on the exempt residual.
        let exempt_hash = plan(&exempt, &flat_cfg.with_engine(EngineKind::Hash));
        assert!(
            (exempt_flat.revenue - exempt_hash.revenue).abs() < 1e-9,
            "case {case}: flat {} vs hash {} on the exempt residual",
            exempt_flat.revenue,
            exempt_hash.revenue
        );
        assert_eq!(
            exempt_flat.strategy.as_slice(),
            exempt_hash.strategy.as_slice(),
            "case {case}: flat and hash suffixes diverged"
        );
    }
    // The suite must actually exercise the distinction, not vacuously pass.
    assert!(
        binding_cases >= 100,
        "only {binding_cases} of 120 cases produced exempt pairs"
    );
    assert!(
        greedy_losses.len() <= 3,
        "greedy lost revenue under exempt semantics in {} of 120 cases: {greedy_losses:?}",
        greedy_losses.len()
    );
    assert!(
        greedy_losses.iter().all(|&(_, rel)| rel < 0.02),
        "a greedy loss exceeded 2% relative: {greedy_losses:?}"
    );
    assert!(
        exempt_total >= conservative_total,
        "exempt semantics lost revenue in aggregate: {exempt_total} vs {conservative_total}"
    );
}

/// The sound form of the dominance claim, asserted per case: on residuals
/// small enough to enumerate, the **optimal** exempt-mode revenue is at
/// least the optimal conservative-mode revenue (the feasible set only
/// grows), and strictly exceeds it on a healthy fraction of cases — the
/// revenue the conservative double-charge was provably leaving on the
/// table.
#[test]
fn exact_optimum_dominates_conservative_per_case() {
    let mut rng = StdRng::seed_from_u64(0xd0_2024);
    let mut strict = 0u32;
    for case in 0..60u32 {
        // Tiny universe so the 2^n enumeration stays cheap: the residual's
        // ground set is at most 2 users × 3 items × 2 remaining steps.
        let mut b = InstanceBuilder::new(2, 3, 3);
        b.display_limit(1);
        for item in 0..3u32 {
            b.item_class(item, item % 2)
                .beta(item, rng.gen_range(0.3..=1.0))
                .capacity(item, 1);
            let prices: Vec<f64> = (0..3).map(|_| rng.gen_range(5.0..30.0)).collect();
            b.prices(item, &prices);
        }
        for user in 0..2u32 {
            for item in 0..3u32 {
                if rng.gen_bool(0.8) {
                    let probs: Vec<f64> = (0..3).map(|_| rng.gen_range(0.1..0.8)).collect();
                    b.candidate(user, item, &probs, 0.0);
                }
            }
        }
        let inst = b.build().unwrap();
        let events = random_events(&mut rng, &inst, 1);
        let exempt = residual_of_validated(&inst, &events, 1);
        let conservative =
            residual_of_validated_with(&inst, &events, 1, ResidualMode::Conservative);

        let best_exempt = revmax_algorithms::exact_optimum(&exempt, 16);
        let best_conservative = revmax_algorithms::exact_optimum(&conservative, 16);
        assert!(
            best_exempt.revenue >= best_conservative.revenue - 1e-9,
            "case {case}: exempt optimum {} below conservative optimum {}",
            best_exempt.revenue,
            best_conservative.revenue
        );
        if best_exempt.revenue > best_conservative.revenue + 1e-9 {
            strict += 1;
        }
    }
    assert!(
        strict >= 10,
        "exemptions never strictly helped ({strict} of 60): the suite is vacuous"
    );
}

#[test]
fn incremental_residuals_match_from_scratch_across_random_histories() {
    let mut rng = StdRng::seed_from_u64(0xacc_2024);
    for case in 0..100 {
        let inst = random_instance(&mut rng);
        if inst.horizon() < 3 {
            continue;
        }
        let first = rng.gen_range(1..inst.horizon() - 1);
        let second = rng.gen_range(first + 1..inst.horizon());
        let batch1 = random_events(&mut rng, &inst, first);
        let mut batch2 = random_events(&mut rng, &inst, second);
        batch2.retain(|e| e.t.value() > first);

        let prev = residual_of_validated(&inst, &batch1, first);
        let mut all = batch1.clone();
        all.extend_from_slice(&batch2);
        let delta = ResidualDelta::new(first, second, &batch2, EngineSnapshot::new());
        let incremental = residual_advance(&inst, &prev, &all, &delta);
        let scratch = residual_of_validated(&inst, &all, second);

        assert_eq!(
            incremental.num_candidates(),
            scratch.num_candidates(),
            "case {case}: candidate sets diverged"
        );
        for i in 0..inst.num_items() {
            let item = ItemId(i);
            assert_eq!(incremental.capacity(item), scratch.capacity(item));
            assert_eq!(incremental.exempt_users(item), scratch.exempt_users(item));
            assert_eq!(incremental.price_series(item), scratch.price_series(item));
        }
        for cand in scratch.candidates() {
            let user = scratch.candidate_user(cand);
            let item = scratch.candidate_item(cand);
            let inc = incremental
                .candidate_for(user, item)
                .unwrap_or_else(|| panic!("case {case}: {user} {item} missing incrementally"));
            for (a, b) in scratch
                .candidate_probs(cand)
                .iter()
                .zip(incremental.candidate_probs(inc))
            {
                assert_eq!(a.to_bits(), b.to_bits(), "case {case}: row bits diverged");
            }
        }

        // And the plans over the two constructions are exactly equal.
        let a = plan(&incremental, &PlannerConfig::default());
        let b = plan(&scratch, &PlannerConfig::default());
        assert_eq!(a.strategy.as_slice(), b.strategy.as_slice());
        assert_eq!(a.revenue.to_bits(), b.revenue.to_bits());
    }
}

/// Exempt-user residuals re-planned with the saturation-aggregate fast path
/// engaged: uniform-β instances (one β per class) produce residuals whose
/// exempt capacity accounting and aggregate marginals compose — plans match
/// the walk ablation and the hash engine to 1e-9, warm and cold, and the
/// warm path still hands its recycled aggregate buffers back through the
/// snapshot pool.
#[test]
fn exempt_residuals_replan_identically_with_aggregates_on() {
    use revmax_algorithms::{plan_residual, Aggregates};

    let mut rng = StdRng::seed_from_u64(0xA66E);
    let mut binding_cases = 0u32;
    for case in 0..60u32 {
        // Uniform-β variant of the storefront-shaped generator: one β per
        // class, so every residual group qualifies for aggregates.
        let num_users = rng.gen_range(3u32..=5);
        let num_items = rng.gen_range(3u32..=6);
        let horizon = rng.gen_range(3u32..=5);
        let num_classes = rng.gen_range(2u32..=3);
        let class_betas: Vec<f64> = (0..num_classes).map(|_| rng.gen_range(0.2..=1.0)).collect();
        let mut b = InstanceBuilder::new(num_users, num_items, horizon);
        b.display_limit(rng.gen_range(1u32..=2));
        for item in 0..num_items {
            let class = rng.gen_range(0..num_classes);
            b.item_class(item, class);
            b.beta(item, class_betas[class as usize]);
            b.capacity(item, rng.gen_range(1u32..=3));
            let prices: Vec<f64> = (0..horizon).map(|_| rng.gen_range(5.0..50.0)).collect();
            b.prices(item, &prices);
        }
        for user in 0..num_users {
            for item in 0..num_items {
                if rng.gen_bool(0.75) {
                    let probs: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.05..0.8)).collect();
                    b.candidate(user, item, &probs, probs[0] * 5.0);
                }
            }
        }
        let inst = b.build().expect("uniform-beta instance must build");
        assert!(inst.all_beta_uniform());

        let now = rng.gen_range(1..inst.horizon());
        let events = random_events(&mut rng, &inst, now);
        let residual = residual_of_validated(&inst, &events, now);
        assert!(residual.all_beta_uniform(), "case {case}: residual profile");
        if residual.has_exemptions() {
            binding_cases += 1;
        }

        let snapshot = EngineSnapshot::new();
        let delta = ResidualDelta::initial(snapshot.clone());
        for shards in [1u32, 2] {
            let base = PlannerConfig::default().with_shards(shards);
            let agg_cold = plan(&residual, &base);
            let walk_cold = plan(&residual, &base.with_aggregates(Aggregates::Off));
            let hash_cold = plan(&residual, &base.with_engine(EngineKind::Hash));
            let agg_warm = plan_residual(&residual, &base.with_warm_start(true), Some(&delta));
            for (label, other) in [
                ("walk", &walk_cold),
                ("hash", &hash_cold),
                ("warm", &agg_warm),
            ] {
                assert!(
                    (agg_cold.revenue - other.revenue).abs()
                        <= 1e-9 * agg_cold.revenue.abs().max(1.0),
                    "case {case} shards {shards}: aggregates {} vs {label} {}",
                    agg_cold.revenue,
                    other.revenue
                );
                assert_eq!(
                    agg_cold.strategy.len(),
                    other.strategy.len(),
                    "case {case} shards {shards}: {label} size"
                );
            }
            assert!(agg_cold.strategy.validate(&residual).is_ok());
        }
        assert!(
            snapshot.has_tables(),
            "case {case}: warm replans must seed the snapshot pool"
        );
        assert!(
            snapshot.pooled_buffers() > 0,
            "case {case}: warm engines must return their buffers"
        );
    }
    assert!(
        binding_cases >= 30,
        "only {binding_cases} of 60 cases produced exempt pairs"
    );
}
