//! Randomized kernel-parity suite (PR 7).
//!
//! The flat engine now *compiles* each (user, class) group to a marginal
//! kernel at construction time (mixed-β walk, uniform-β walk, uniform-β
//! aggregate, β ∈ {0, 1} degenerates — see `revmax_core::KernelId`), the
//! greedy drivers batch heap-refresh bursts by kernel id, and the default
//! [`Aggregates::Auto`] mode depth-gates the aggregate kernels. None of that
//! may change a single plan. For ≥ 120 random instances that deliberately mix
//! every kernel shape and straddle the Auto depth gate, this suite asserts:
//!
//! * **Compiled kernels == generic walk == hash engine.** Plans produced with
//!   the default compiled-kernel configuration match the `Aggregates::Off`
//!   generic-walk ablation and the hash-engine oracle to 1e-9 in revenue with
//!   identically sized, valid strategies — across GG and SLG, at 1 and 2
//!   shards.
//! * **Batched refresh == scalar refresh, bit for bit.** `kernel_batch` 0
//!   (the legacy scalar loop), 1 and 8 (the tournament driver for G-Greedy,
//!   burst widths for the heap-based sharded/SLG drivers) produce
//!   bit-identical revenues and identical strategies on both engines.
//! * **Warm == cold.** Residual replans through the snapshot pool
//!   ([`plan_residual`] with `warm_start`) reproduce the cold plans exactly,
//!   with batching on and off, and still seed/return the pooled buffers.
//!
//! The generator is deliberately adversarial about kernel coverage: classes
//! are independently shaped uniform-β, mixed-β, β = 1 (memoryless) or β = 0
//! (full saturation), and horizons span 2–6 so the Auto gate
//! (`horizon ≥ 4 && group candidates ≥ 2`) lands groups on both sides.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revmax_algorithms::{
    plan, plan_residual, Aggregates, EngineKind, PlanAlgorithm, PlannerConfig,
};
use revmax_core::{
    residual_of_validated, validate_events, AdoptionEvent, EngineSnapshot, Instance,
    InstanceBuilder, ItemId, ResidualDelta,
};

/// Per-class kernel shape the generator aimed for (the compiler re-derives
/// the true shape from the built instance; this is only used for coverage
/// accounting).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Shape {
    Uniform,
    Mixed,
    Unit,
    Zero,
}

/// A small instance mixing every kernel shape: 2–4 classes, each drawn as
/// uniform-β, per-item mixed-β, β = 1 or β = 0; horizons 2–6 straddle the
/// `Aggregates::Auto` depth gate; tight capacities so saturation and
/// capacity retirement both fire.
fn random_kernel_instance(rng: &mut StdRng) -> (Instance, Vec<Shape>) {
    let num_users = rng.gen_range(2u32..=5);
    let num_items = rng.gen_range(3u32..=6);
    let horizon = rng.gen_range(2u32..=6);
    let num_classes = rng.gen_range(2u32..=4);
    let shapes: Vec<Shape> = (0..num_classes)
        .map(|_| match rng.gen_range(0u8..=3) {
            0 => Shape::Uniform,
            1 => Shape::Mixed,
            2 => Shape::Unit,
            _ => Shape::Zero,
        })
        .collect();
    let uniform_betas: Vec<f64> = (0..num_classes)
        .map(|_| rng.gen_range(0.2..=0.95))
        .collect();
    let mut b = InstanceBuilder::new(num_users, num_items, horizon);
    b.display_limit(rng.gen_range(1u32..=2));
    for item in 0..num_items {
        let class = rng.gen_range(0..num_classes);
        b.item_class(item, class);
        b.beta(
            item,
            match shapes[class as usize] {
                Shape::Uniform => uniform_betas[class as usize],
                Shape::Mixed => rng.gen_range(0.1..=1.0),
                Shape::Unit => 1.0,
                Shape::Zero => 0.0,
            },
        );
        b.capacity(item, rng.gen_range(1u32..=3));
        let prices: Vec<f64> = (0..horizon).map(|_| rng.gen_range(5.0..50.0)).collect();
        b.prices(item, &prices);
    }
    for user in 0..num_users {
        for item in 0..num_items {
            if rng.gen_bool(0.8) {
                let probs: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.05..0.8)).collect();
                b.candidate(user, item, &probs, probs[0] * 5.0);
            }
        }
    }
    (b.build().expect("kernel instance must build"), shapes)
}

/// Valid random event prefix up to `now` (same scheme as the residual suite).
fn random_events(rng: &mut StdRng, inst: &Instance, now: u32) -> Vec<AdoptionEvent> {
    let mut events = Vec::new();
    for t in 1..=now {
        for user in 0..inst.num_users() {
            let mut shown: Vec<u32> = Vec::new();
            for _slot in 0..inst.display_limit() {
                if !rng.gen_bool(0.7) {
                    continue;
                }
                let item = rng.gen_range(0..inst.num_items());
                if shown.contains(&item) {
                    continue;
                }
                shown.push(item);
                let adopted = rng.gen_bool(0.3);
                events.push(if adopted {
                    AdoptionEvent::adopted(user, item, t)
                } else {
                    AdoptionEvent::rejected(user, item, t)
                });
            }
        }
    }
    assert!(validate_events(inst, &events, now).is_ok());
    events
}

const ALGORITHMS: [PlanAlgorithm; 2] = [
    PlanAlgorithm::GlobalGreedy,
    PlanAlgorithm::SequentialLocalGreedy,
];

#[test]
fn compiled_kernels_match_generic_walk_and_hash_engine() {
    let mut rng = StdRng::seed_from_u64(0x4b45_524e);
    let mut degenerate_cases = 0u32;
    let mut agg_gated_cases = 0u32;
    let mut walk_gated_cases = 0u32;
    for case in 0..120u32 {
        let (inst, shapes) = random_kernel_instance(&mut rng);
        if shapes.contains(&Shape::Unit) || shapes.contains(&Shape::Zero) {
            degenerate_cases += 1;
        }
        let has_uniform =
            (0..inst.num_items()).any(|i| inst.beta(ItemId(i)) > 0.0 && inst.beta(ItemId(i)) < 1.0);
        if has_uniform && inst.horizon() >= 4 {
            agg_gated_cases += 1;
        }
        if inst.horizon() < 4 {
            walk_gated_cases += 1;
        }

        for algorithm in ALGORITHMS {
            for shards in [1u32, 2] {
                let base = PlannerConfig::default()
                    .with_algorithm(algorithm)
                    .with_shards(shards);
                let kernels = plan(&inst, &base);
                let walk = plan(&inst, &base.with_aggregates(Aggregates::Off));
                let hash = plan(&inst, &base.with_engine(EngineKind::Hash));
                for (label, other) in [("generic walk", &walk), ("hash", &hash)] {
                    assert!(
                        (kernels.revenue - other.revenue).abs()
                            <= 1e-9 * kernels.revenue.abs().max(1.0),
                        "case {case} {algorithm:?} shards {shards}: kernels {} vs {label} {}",
                        kernels.revenue,
                        other.revenue
                    );
                    assert_eq!(
                        kernels.strategy.len(),
                        other.strategy.len(),
                        "case {case} {algorithm:?} shards {shards}: {label} strategy size"
                    );
                }
                assert!(
                    kernels.strategy.validate(&inst).is_ok(),
                    "case {case} {algorithm:?} shards {shards}: compiled-kernel plan invalid"
                );
            }
        }
    }
    // The suite must exercise every kernel family, not vacuously pass on one.
    assert!(
        degenerate_cases >= 15,
        "only {degenerate_cases} of 120 cases had β ∈ {{0, 1}} classes"
    );
    assert!(
        agg_gated_cases >= 15,
        "only {agg_gated_cases} of 120 cases could clear the Auto depth gate"
    );
    assert!(
        walk_gated_cases >= 15,
        "only {walk_gated_cases} of 120 cases sat below the Auto depth gate"
    );
}

#[test]
fn batched_refresh_is_bit_identical_to_scalar_refresh() {
    let mut rng = StdRng::seed_from_u64(0x0ba7_c4ed);
    for case in 0..60u32 {
        let (inst, _) = random_kernel_instance(&mut rng);
        for algorithm in ALGORITHMS {
            for engine in [EngineKind::Flat, EngineKind::Hash] {
                for shards in [1u32, 2] {
                    let base = PlannerConfig::default()
                        .with_algorithm(algorithm)
                        .with_engine(engine)
                        .with_shards(shards);
                    let scalar = plan(&inst, &base.with_kernel_batch(0));
                    let rotation = plan(&inst, &base.with_kernel_batch(1));
                    let batched = plan(&inst, &base.with_kernel_batch(8));
                    for (label, other) in [("rotation", &rotation), ("batch-8", &batched)] {
                        assert_eq!(
                            scalar.revenue.to_bits(),
                            other.revenue.to_bits(),
                            "case {case} {algorithm:?} {engine:?} shards {shards}: \
                             scalar {} vs {label} {}",
                            scalar.revenue,
                            other.revenue
                        );
                        assert_eq!(
                            scalar.strategy.as_slice(),
                            other.strategy.as_slice(),
                            "case {case} {algorithm:?} {engine:?} shards {shards}: \
                             {label} strategy diverged"
                        );
                    }
                }
            }
        }
    }
}

/// An instance above the tournament driver's size gate (~4k candidates):
/// the small generator above never reaches it, so this one exists to give
/// the tournament selection core real parity coverage.
fn large_kernel_instance(rng: &mut StdRng) -> Instance {
    let num_users = 90;
    let num_items = 60;
    let horizon = rng.gen_range(4u32..=6);
    let num_classes = 5;
    let uniform_betas: Vec<f64> = (0..num_classes)
        .map(|_| rng.gen_range(0.2..=0.95))
        .collect();
    let mut b = InstanceBuilder::new(num_users, num_items, horizon);
    b.display_limit(2);
    for item in 0..num_items {
        let class = rng.gen_range(0..num_classes);
        b.item_class(item, class);
        // Half the classes uniform-β, half mixed, so both kernel families
        // run under the tournament driver.
        b.beta(
            item,
            if class % 2 == 0 {
                uniform_betas[class as usize]
            } else {
                rng.gen_range(0.1..=1.0)
            },
        );
        b.capacity(item, rng.gen_range(3u32..=8));
        let prices: Vec<f64> = (0..horizon).map(|_| rng.gen_range(5.0..50.0)).collect();
        b.prices(item, &prices);
    }
    for user in 0..num_users {
        for item in 0..num_items {
            if rng.gen_bool(0.9) {
                let probs: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.05..0.8)).collect();
                b.candidate(user, item, &probs, probs[0] * 5.0);
            }
        }
    }
    b.build().expect("large kernel instance must build")
}

#[test]
fn tournament_driver_matches_scalar_above_the_size_gate() {
    let mut rng = StdRng::seed_from_u64(0x0070_4a4e);
    for case in 0..3u32 {
        let inst = large_kernel_instance(&mut rng);
        assert!(
            inst.num_candidates() >= 4096,
            "case {case}: generator must clear the tournament size gate \
             ({} candidates)",
            inst.num_candidates()
        );
        let base = PlannerConfig::default();
        let scalar = plan(&inst, &base.with_kernel_batch(0));
        let tournament = plan(&inst, &base.with_kernel_batch(8));
        assert_eq!(
            scalar.revenue.to_bits(),
            tournament.revenue.to_bits(),
            "case {case}: tournament revenue diverged from scalar"
        );
        assert_eq!(
            scalar.strategy.as_slice(),
            tournament.strategy.as_slice(),
            "case {case}: tournament strategy diverged from scalar"
        );
        let hash = plan(&inst, &base.with_engine(EngineKind::Hash));
        assert!(
            (tournament.revenue - hash.revenue).abs() <= 1e-9 * hash.revenue.abs().max(1.0),
            "case {case}: tournament {} vs hash oracle {}",
            tournament.revenue,
            hash.revenue
        );
        assert!(tournament.strategy.validate(&inst).is_ok());
    }
}

#[test]
fn warm_replans_match_cold_with_kernels_and_batching() {
    let mut rng = StdRng::seed_from_u64(0x3a64_77a8);
    for case in 0..60u32 {
        let (inst, _) = random_kernel_instance(&mut rng);
        let now = rng.gen_range(1..inst.horizon());
        let events = random_events(&mut rng, &inst, now);
        let residual = residual_of_validated(&inst, &events, now);

        let snapshot = EngineSnapshot::new();
        let delta = ResidualDelta::initial(snapshot.clone());
        for algorithm in ALGORITHMS {
            for shards in [1u32, 2] {
                let base = PlannerConfig::default()
                    .with_algorithm(algorithm)
                    .with_shards(shards);
                let cold = plan(&residual, &base);
                let warm = plan_residual(&residual, &base.with_warm_start(true), Some(&delta));
                let warm_scalar = plan_residual(
                    &residual,
                    &base.with_warm_start(true).with_kernel_batch(0),
                    Some(&delta),
                );
                for (label, other) in [("warm", &warm), ("warm scalar", &warm_scalar)] {
                    assert_eq!(
                        cold.revenue.to_bits(),
                        other.revenue.to_bits(),
                        "case {case} {algorithm:?} shards {shards}: cold {} vs {label} {}",
                        cold.revenue,
                        other.revenue
                    );
                    assert_eq!(
                        cold.strategy.as_slice(),
                        other.strategy.as_slice(),
                        "case {case} {algorithm:?} shards {shards}: {label} strategy diverged"
                    );
                }
                assert!(cold.strategy.validate(&residual).is_ok());
            }
        }
        assert!(
            snapshot.has_tables(),
            "case {case}: warm replans must seed the snapshot pool"
        );
        assert!(
            snapshot.pooled_buffers() > 0,
            "case {case}: warm engines must return their buffers"
        );
    }
}
