//! The asynchronous planning front-end: a [`PlanService`] worker pool whose
//! [`PlanService::submit`] returns a [`PlanTicket`] immediately.
//!
//! The service is runtime-free: submission enqueues a job on the pool's
//! channel and hands back a ticket backed by a `Mutex` + `Condvar` cell that
//! the executing worker fills in. Tickets support blocking
//! ([`PlanTicket::wait`]), non-blocking ([`PlanTicket::try_poll`]), and
//! best-effort cancellation ([`PlanTicket::cancel`]); the synchronous
//! [`PlanService::plan_batch`] is just submit-all-then-wait over the same
//! machinery.
//!
//! # Drop safety
//!
//! * Dropping a **ticket** abandons the result: the worker fills the shared
//!   cell, nobody reads it, the `Arc` frees it. Never blocks.
//! * Dropping the **service** closes the job channel and joins the workers.
//!   Jobs already queued are drained first (the channel buffers them), so
//!   tickets held elsewhere still complete; nothing deadlocks or leaks.
//! * **Cancelling** a queued ticket flips its state before a worker claims
//!   it; the worker skips the job entirely. Cancellation of a running or
//!   finished job returns `false` and changes nothing — plans are short, so
//!   there is no mid-plan abort.

use revmax_algorithms::{plan_residual, GreedyOutcome, PlannerConfig};
use revmax_core::{Instance, ResidualDelta, Strategy};
use std::num::NonZeroUsize;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One planned instance: the submit-order index plus the planner outcome.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Position of the instance in its batch (`0` for single submissions).
    pub index: usize,
    /// The planner outcome (strategy, revenue, trace, evaluation counts).
    pub outcome: GreedyOutcome,
}

/// Observable lifecycle of a ticket (see [`PlanTicket::try_poll`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketStatus {
    /// Submitted, not yet claimed by a worker.
    Queued,
    /// A worker is planning the instance right now.
    Running,
    /// The plan is finished and waiting to be collected.
    Done,
    /// The ticket was cancelled before a worker claimed it.
    Cancelled,
}

/// What a bounded wait observed (see [`PlanTicket::wait_timeout`]).
#[derive(Debug)]
pub enum WaitOutcome {
    /// The plan finished within the timeout; the report is handed over
    /// (a report is collectable exactly once).
    Done(PlanReport),
    /// The ticket was cancelled before a worker claimed it.
    Cancelled,
    /// The timeout elapsed with the plan still queued or running. The
    /// ticket is untouched: wait again, poll, or cancel.
    TimedOut,
}

enum TicketState {
    Queued,
    Running,
    Done(Option<PlanReport>),
    Cancelled,
}

struct TicketShared {
    state: Mutex<TicketState>,
    cond: Condvar,
}

/// A claim on an asynchronously running plan, returned by
/// [`PlanService::submit`].
///
/// The ticket is the only handle to the result: [`PlanTicket::wait`] blocks
/// until the plan finishes (returning `None` if it was cancelled first),
/// [`PlanTicket::try_poll`] peeks without blocking, and
/// [`PlanTicket::cancel`] withdraws a still-queued job. Dropping the ticket
/// abandons the result without blocking the worker.
#[must_use = "a dropped ticket abandons its plan; call wait() or try_poll()"]
pub struct PlanTicket {
    shared: Arc<TicketShared>,
}

impl PlanTicket {
    /// Blocks until the plan completes and returns it; `None` if the ticket
    /// was cancelled before a worker picked it up.
    pub fn wait(self) -> Option<PlanReport> {
        let mut state = self.shared.state.lock().expect("ticket state poisoned");
        loop {
            match &mut *state {
                TicketState::Done(report) => {
                    return Some(report.take().expect("a ticket is waited on at most once"))
                }
                TicketState::Cancelled => return None,
                TicketState::Queued | TicketState::Running => {
                    state = self.shared.cond.wait(state).expect("ticket state poisoned");
                }
            }
        }
    }

    /// Blocks for at most `timeout`, then reports what it saw. Unlike
    /// [`PlanTicket::wait`] this does not consume the ticket, so a timed-out
    /// wait can be retried, polled, or cancelled; a plan that completes
    /// *after* a timeout stays collectable by the next wait. The report is
    /// handed over at most once — a [`WaitOutcome::Done`] here makes a later
    /// `wait()` a contract violation (it panics), exactly like waiting
    /// twice would be.
    pub fn wait_timeout(&self, timeout: Duration) -> WaitOutcome {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("ticket state poisoned");
        loop {
            match &mut *state {
                TicketState::Done(report) => {
                    return WaitOutcome::Done(
                        report.take().expect("a ticket's report is collected once"),
                    )
                }
                TicketState::Cancelled => return WaitOutcome::Cancelled,
                TicketState::Queued | TicketState::Running => {
                    let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                        return WaitOutcome::TimedOut;
                    };
                    let (guard, _timed_out) = self
                        .shared
                        .cond
                        .wait_timeout(state, remaining)
                        .expect("ticket state poisoned");
                    state = guard;
                }
            }
        }
    }

    /// The ticket's current lifecycle state, without blocking. A `Done`
    /// result stays collectable via [`PlanTicket::wait`] (which then returns
    /// immediately).
    pub fn try_poll(&self) -> TicketStatus {
        match *self.shared.state.lock().expect("ticket state poisoned") {
            TicketState::Queued => TicketStatus::Queued,
            TicketState::Running => TicketStatus::Running,
            TicketState::Done(_) => TicketStatus::Done,
            TicketState::Cancelled => TicketStatus::Cancelled,
        }
    }

    /// Cancels the job if no worker has claimed it yet. Returns `true` when
    /// the cancellation took effect (the plan will never run and
    /// [`PlanTicket::wait`] returns `None`); `false` when the job is already
    /// running or finished, which leaves the ticket untouched.
    pub fn cancel(&self) -> bool {
        let mut state = self.shared.state.lock().expect("ticket state poisoned");
        if matches!(*state, TicketState::Queued) {
            *state = TicketState::Cancelled;
            self.shared.cond.notify_all();
            true
        } else {
            false
        }
    }
}

struct Job {
    inst: Arc<Instance>,
    index: usize,
    config: PlannerConfig,
    /// Warm-start handle of a session replan (`None` for one-shot plans).
    delta: Option<ResidualDelta>,
    ticket: Arc<TicketShared>,
}

/// An asynchronous planning service over a persistent pool of workers.
///
/// Workers are spawned once and block on a shared job queue;
/// [`PlanService::submit`] enqueues one instance and returns a
/// [`PlanTicket`] immediately, and the batch entry points
/// ([`PlanService::plan_batch`] / [`PlanService::plan_batch_reports`]) are
/// submit-all-then-wait over the same queue. Dropping the service closes the
/// queue, drains the already-submitted jobs, and joins the workers.
pub struct PlanService {
    job_tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl PlanService {
    /// Spawns a pool with `workers` threads (`0` = one per unit of available
    /// hardware parallelism).
    pub fn new(workers: usize) -> Self {
        let n = if workers == 0 {
            std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
        } else {
            workers
        };
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..n)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                std::thread::spawn(move || worker_loop(&job_rx))
            })
            .collect();
        PlanService {
            job_tx: Some(job_tx),
            workers,
        }
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one instance for planning and returns immediately.
    ///
    /// When `config.parallel` is unset, the service forces the per-plan
    /// fill/scan parallelism **off**: the pool already multiplexes instances
    /// over its workers, so per-plan threads would oversubscribe. Pass
    /// `Some(true)` explicitly to override (the plan itself is identical
    /// either way).
    pub fn submit(&self, inst: Instance, config: PlannerConfig) -> PlanTicket {
        self.submit_indexed(Arc::new(inst), 0, config, None)
    }

    /// [`PlanService::submit`] without cloning the instance — batches of the
    /// same instance (e.g. the bench emitter) share one allocation.
    pub fn submit_shared(&self, inst: Arc<Instance>, config: PlannerConfig) -> PlanTicket {
        self.submit_indexed(inst, 0, config, None)
    }

    /// Enqueues a **session replan**: like [`PlanService::submit_shared`],
    /// with an optional [`ResidualDelta`] so a warm-start-enabled
    /// configuration recycles the session's engine state on the worker. This
    /// is the ticketed path `PlanSession::attach` routes its replans through.
    pub fn submit_replan(
        &self,
        inst: Arc<Instance>,
        config: PlannerConfig,
        delta: Option<ResidualDelta>,
    ) -> PlanTicket {
        self.submit_indexed(inst, 0, config, delta)
    }

    fn submit_indexed(
        &self,
        inst: Arc<Instance>,
        index: usize,
        mut config: PlannerConfig,
        delta: Option<ResidualDelta>,
    ) -> PlanTicket {
        if config.parallel.is_none() {
            config.parallel = Some(false);
        }
        let shared = Arc::new(TicketShared {
            state: Mutex::new(TicketState::Queued),
            cond: Condvar::new(),
        });
        self.job_tx
            .as_ref()
            .expect("pool is alive until drop")
            .send(Job {
                inst,
                index,
                config,
                delta,
                ticket: Arc::clone(&shared),
            })
            .expect("workers outlive the service");
        PlanTicket { shared }
    }

    /// Plans every instance of the batch and returns full reports in batch
    /// order — submit-all-then-wait over the async front-end.
    pub fn plan_batch_reports(
        &self,
        instances: Vec<Instance>,
        config: impl Into<PlannerConfig>,
    ) -> Vec<PlanReport> {
        let config = config.into();
        let tickets: Vec<PlanTicket> = instances
            .into_iter()
            .enumerate()
            .map(|(index, inst)| self.submit_indexed(Arc::new(inst), index, config, None))
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().expect("batch tickets are never cancelled"))
            .collect()
    }

    /// Plans every instance of the batch and returns the strategies in batch
    /// order (the `plan_batch(Vec<Instance>, config) -> Vec<Strategy>`
    /// serving API).
    pub fn plan_batch(
        &self,
        instances: Vec<Instance>,
        config: impl Into<PlannerConfig>,
    ) -> Vec<Strategy> {
        self.plan_batch_reports(instances, config)
            .into_iter()
            .map(|r| r.outcome.strategy)
            .collect()
    }
}

fn worker_loop(job_rx: &Mutex<Receiver<Job>>) {
    loop {
        // Take the next job while holding the lock only for the dequeue,
        // then plan without blocking the queue.
        let job = {
            let guard = job_rx.lock().expect("job queue poisoned");
            guard.recv()
        };
        let Ok(job) = job else {
            break; // queue closed and drained: the service was dropped
        };
        {
            let mut state = job.ticket.state.lock().expect("ticket state poisoned");
            match *state {
                TicketState::Cancelled => continue, // withdrawn before we got it
                _ => *state = TicketState::Running,
            }
        }
        let outcome = plan_residual(&job.inst, &job.config, job.delta.as_ref());
        let mut state = job.ticket.state.lock().expect("ticket state poisoned");
        *state = TicketState::Done(Some(PlanReport {
            index: job.index,
            outcome,
        }));
        job.ticket.cond.notify_all();
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        drop(self.job_tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One-shot convenience: plans a batch over a transient pool sized to the
/// available hardware parallelism. Accepts a [`PlannerConfig`] or anything
/// convertible into one (including the deprecated `PlanOptions`).
pub fn plan_batch(instances: Vec<Instance>, config: impl Into<PlannerConfig>) -> Vec<Strategy> {
    PlanService::new(0).plan_batch(instances, config)
}

// ---------------------------------------------------------------------------
// Deprecated pre-unification surface, kept as thin conversions.
// ---------------------------------------------------------------------------

/// Which planner runs per instance of a batch.
#[deprecated(
    since = "0.2.0",
    note = "use PlanAlgorithm via PlannerConfig; removal scheduled for 0.4.0"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchAlgorithm {
    /// G-Greedy (the paper's best performer, the serving default).
    GlobalGreedy,
    /// SL-Greedy (chronological per-time-step greedy; cheaper, lower revenue).
    SequentialLocalGreedy,
}

// Derived `Default` would reference the deprecated variant and trip the
// deprecation lint; the manual impl carries the allow.
#[allow(deprecated, clippy::derivable_impls)]
impl Default for BatchAlgorithm {
    fn default() -> Self {
        BatchAlgorithm::GlobalGreedy
    }
}

/// Options for a batch-planning call.
#[deprecated(
    since = "0.2.0",
    note = "use PlannerConfig (this struct converts via `PlannerConfig::from`); removal scheduled for 0.4.0"
)]
#[derive(Debug, Clone, Copy)]
#[allow(deprecated)]
pub struct PlanOptions {
    /// Planner run per instance.
    pub algorithm: BatchAlgorithm,
    /// User shards per instance (`0`/`1` = sequential planning core).
    pub shards: u32,
    /// Incremental revenue engine backing every plan.
    pub engine: revmax_algorithms::EngineKind,
    /// Heap implementation backing the selection loops.
    pub heap: revmax_algorithms::HeapKind,
}

#[allow(deprecated)]
impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            algorithm: BatchAlgorithm::GlobalGreedy,
            shards: 1,
            engine: revmax_algorithms::EngineKind::Flat,
            heap: revmax_algorithms::HeapKind::Lazy,
        }
    }
}

#[allow(deprecated)]
impl From<PlanOptions> for PlannerConfig {
    fn from(o: PlanOptions) -> Self {
        PlannerConfig {
            algorithm: match o.algorithm {
                BatchAlgorithm::GlobalGreedy => revmax_algorithms::PlanAlgorithm::GlobalGreedy,
                BatchAlgorithm::SequentialLocalGreedy => {
                    revmax_algorithms::PlanAlgorithm::SequentialLocalGreedy
                }
            },
            engine: o.engine,
            heap: o.heap,
            shards: o.shards.max(1),
            // The pool multiplexes instances over threads; keep per-plan
            // fills sequential (the historical PlanOptions behaviour).
            parallel: Some(false),
            ..PlannerConfig::default()
        }
    }
}

/// The pre-unification name of [`PlanService`].
#[deprecated(
    since = "0.2.0",
    note = "renamed to PlanService; removal scheduled for 0.4.0"
)]
pub type BatchPlanner = PlanService;

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_algorithms::{global_greedy, EngineKind, PlanAlgorithm};
    use revmax_core::InstanceBuilder;
    use std::time::Duration;

    fn instance(seed: u32) -> Instance {
        let mut b = InstanceBuilder::new(3, 3, 3);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .beta(0, 0.4)
            .beta(1, 0.7)
            .beta(2, 0.9)
            .capacity(0, 1)
            .capacity(1, 2)
            .capacity(2, 2)
            .prices(0, &[30.0, 24.0, 27.0])
            .prices(1, &[10.0, 12.0, 9.0])
            .prices(2, &[15.0, 15.0, 14.0]);
        for u in 0..3 {
            let base = 0.2 + 0.1 * ((u + seed) % 3) as f64;
            b.candidate(u, 0, &[base, base + 0.2, base + 0.1], 4.0);
            b.candidate(u, 1, &[base + 0.3, base, base + 0.25], 3.5);
            b.candidate(u, 2, &[base + 0.1, base + 0.1, base + 0.15], 4.2);
        }
        b.build().unwrap()
    }

    /// A larger instance so an in-flight plan keeps a single worker busy for
    /// a macroscopic amount of time (used by the cancellation tests).
    fn chunky_instance() -> Instance {
        let users = 60u32;
        let items = 30u32;
        let mut b = InstanceBuilder::new(users, items, 5);
        b.display_limit(2);
        for i in 0..items {
            b.item_class(i, i % 6)
                .beta(i, 0.3 + 0.02 * (i % 10) as f64)
                .capacity(i, 20)
                .constant_price(i, 5.0 + i as f64);
        }
        for u in 0..users {
            for i in 0..items {
                if (u + i) % 3 == 0 {
                    let p = 0.1 + 0.01 * ((u + i) % 50) as f64;
                    b.candidate(u, i, &[p, p, p, p, p], 3.0);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn submit_returns_immediately_and_wait_delivers() {
        let service = PlanService::new(2);
        let inst = instance(0);
        let direct = global_greedy(&inst);
        let ticket = service.submit(inst.clone(), PlannerConfig::default());
        let report = ticket.wait().expect("never cancelled");
        assert!((report.outcome.revenue - direct.revenue).abs() < 1e-9);
        assert!(report.outcome.strategy.validate(&inst).is_ok());
        assert_eq!(report.index, 0);
    }

    #[test]
    fn try_poll_reaches_done_without_blocking() {
        let service = PlanService::new(1);
        let ticket = service.submit(instance(1), PlannerConfig::default());
        // Spin (bounded) until the worker finishes; every observed state must
        // be a legal lifecycle state.
        let mut polls = 0u32;
        loop {
            match ticket.try_poll() {
                TicketStatus::Done => break,
                TicketStatus::Cancelled => panic!("never cancelled"),
                TicketStatus::Queued | TicketStatus::Running => {
                    polls += 1;
                    assert!(polls < 1_000_000, "plan never completed");
                    std::thread::yield_now();
                }
            }
        }
        assert!(ticket.wait().is_some());
    }

    #[test]
    fn batch_plans_match_direct_runs_at_every_shard_count() {
        let batch: Vec<Instance> = (0..4).map(instance).collect();
        let direct: Vec<f64> = batch.iter().map(|i| global_greedy(i).revenue).collect();
        for shards in [1u32, 2, 3] {
            let service = PlanService::new(2);
            let reports = service
                .plan_batch_reports(batch.clone(), PlannerConfig::default().with_shards(shards));
            assert_eq!(reports.len(), batch.len());
            for (i, report) in reports.iter().enumerate() {
                assert_eq!(report.index, i);
                assert!(
                    (report.outcome.revenue - direct[i]).abs() < 1e-9,
                    "instance {i} at {shards} shards: {} vs {}",
                    report.outcome.revenue,
                    direct[i]
                );
                assert!(report.outcome.strategy.validate(&batch[i]).is_ok());
            }
        }
    }

    #[test]
    fn pool_survives_multiple_batches() {
        let service = PlanService::new(1);
        for round in 0..3 {
            let strategies = service.plan_batch(
                vec![instance(round), instance(round + 1)],
                PlannerConfig::default(),
            );
            assert_eq!(strategies.len(), 2);
            assert!(strategies.iter().all(|s| !s.is_empty()));
        }
        assert_eq!(service.worker_count(), 1);
    }

    #[test]
    fn local_greedy_batches_work_too() {
        let batch = vec![instance(0), instance(1)];
        let strategies = plan_batch(
            batch.clone(),
            PlannerConfig::default()
                .with_algorithm(PlanAlgorithm::SequentialLocalGreedy)
                .with_shards(2),
        );
        for (s, inst) in strategies.iter().zip(&batch) {
            assert!(s.validate(inst).is_ok());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(plan_batch(Vec::new(), PlannerConfig::default()).is_empty());
    }

    #[test]
    fn cancel_before_execution_skips_the_plan() {
        // One worker, one long-running job in front: the tail submissions sit
        // in the queue long enough to cancel deterministically.
        let service = PlanService::new(1);
        let blocker = service.submit(chunky_instance(), PlannerConfig::default());
        let doomed = service.submit(instance(0), PlannerConfig::default());
        let kept = service.submit(instance(1), PlannerConfig::default());
        assert!(doomed.cancel(), "queued ticket must cancel");
        assert!(!doomed.cancel(), "second cancel is a no-op");
        assert_eq!(doomed.try_poll(), TicketStatus::Cancelled);
        assert!(doomed.wait().is_none(), "cancelled wait returns None");
        // The service keeps serving around the hole.
        assert!(blocker.wait().is_some());
        assert!(kept.wait().is_some());
    }

    /// A ticket no worker will ever claim — its state is driven by the test
    /// alone, so the timed-wait lifecycle is exercised deterministically
    /// (a real queued job could be claimed at any time on a loaded host).
    fn orphan_ticket() -> (PlanTicket, Arc<TicketShared>) {
        let shared = Arc::new(TicketShared {
            state: Mutex::new(TicketState::Queued),
            cond: Condvar::new(),
        });
        (
            PlanTicket {
                shared: Arc::clone(&shared),
            },
            shared,
        )
    }

    #[test]
    fn wait_timeout_times_out_then_completes() {
        let (ticket, shared) = orphan_ticket();
        // Unclaimed: a bounded wait must time out and leave the ticket
        // collectable.
        assert!(matches!(
            ticket.wait_timeout(Duration::from_millis(5)),
            WaitOutcome::TimedOut
        ));
        assert_eq!(ticket.try_poll(), TicketStatus::Queued);
        // Completion arrives while the next bounded wait is blocking.
        let filler = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let mut state = shared.state.lock().unwrap();
            *state = TicketState::Done(Some(PlanReport {
                index: 7,
                outcome: revmax_algorithms::plan(&instance(0), &PlannerConfig::default()),
            }));
            shared.cond.notify_all();
        });
        match ticket.wait_timeout(Duration::from_secs(60)) {
            WaitOutcome::Done(report) => {
                assert_eq!(report.index, 7);
                assert!(!report.outcome.strategy.is_empty());
            }
            other => panic!("expected Done once the worker filled the cell, got {other:?}"),
        }
        filler.join().unwrap();
    }

    #[test]
    fn wait_timeout_observes_cancellation() {
        let (ticket, _shared) = orphan_ticket();
        assert!(matches!(
            ticket.wait_timeout(Duration::from_millis(5)),
            WaitOutcome::TimedOut
        ));
        assert!(ticket.cancel(), "still queued: cancel must take effect");
        assert!(matches!(
            ticket.wait_timeout(Duration::from_millis(5)),
            WaitOutcome::Cancelled
        ));
        assert!(ticket.wait().is_none(), "cancelled wait returns None");
    }

    #[test]
    fn cancel_after_completion_is_refused() {
        let service = PlanService::new(1);
        let ticket = service.submit(instance(0), PlannerConfig::default());
        while ticket.try_poll() != TicketStatus::Done {
            std::thread::yield_now();
        }
        assert!(!ticket.cancel(), "done tickets cannot be cancelled");
        assert!(ticket.wait().is_some());
    }

    #[test]
    fn cancelled_and_resubmitted_plans_match_across_engines() {
        // Satellite check: a cancel + re-submit cycle must not perturb the
        // plan, and the flat and hash engines must agree to 1e-9 on the
        // re-submitted ticket.
        let service = PlanService::new(1);
        let inst = instance(2);
        let reference = global_greedy(&inst);
        let blocker = service.submit(chunky_instance(), PlannerConfig::default());
        let first = service.submit(inst.clone(), PlannerConfig::default());
        first.cancel();
        let mut outcomes = Vec::new();
        for engine in [EngineKind::Flat, EngineKind::Hash] {
            let resubmitted =
                service.submit(inst.clone(), PlannerConfig::default().with_engine(engine));
            let report = resubmitted.wait().expect("resubmission completes");
            assert!(
                (report.outcome.revenue - reference.revenue).abs() < 1e-9,
                "{engine:?} after cancel/resubmit: {} vs {}",
                report.outcome.revenue,
                reference.revenue
            );
            outcomes.push(report.outcome);
        }
        assert_eq!(
            outcomes[0].strategy.as_slice(),
            outcomes[1].strategy.as_slice(),
            "flat and hash engines diverged on the re-submitted ticket"
        );
        let _ = blocker.wait();
    }

    #[test]
    fn dropping_tickets_mid_batch_does_not_wedge_the_pool() {
        let service = PlanService::new(2);
        for round in 0..3 {
            // Submit and immediately drop: the workers still execute (or the
            // results are abandoned) and the pool stays usable.
            let _ = service.submit(instance(round), PlannerConfig::default());
        }
        let follow_up = service.submit(instance(9), PlannerConfig::default());
        let report = follow_up
            .wait()
            .expect("pool keeps serving after dropped tickets");
        assert!(!report.outcome.strategy.is_empty());
    }

    #[test]
    fn dropping_the_service_drains_queued_tickets() {
        let service = PlanService::new(1);
        let blocker = service.submit(chunky_instance(), PlannerConfig::default());
        let queued = service.submit(instance(0), PlannerConfig::default());
        // Wait on the tickets from another thread while the service drops:
        // drop closes the queue but buffered jobs are drained first.
        let waiter = std::thread::spawn(move || {
            let a = blocker.wait().is_some();
            let b = queued.wait().is_some();
            (a, b)
        });
        drop(service);
        let (a, b) = waiter.join().expect("waiter thread");
        assert!(a && b, "queued tickets must complete across service drop");
    }

    #[test]
    fn dropping_the_service_with_unwaited_tickets_terminates() {
        let service = PlanService::new(2);
        let tickets: Vec<PlanTicket> = (0..4)
            .map(|i| service.submit(instance(i), PlannerConfig::default()))
            .collect();
        drop(service); // joins workers; tickets never waited on
        drop(tickets);
        // Reaching this line at all is the assertion (no deadlock, no leak);
        // give the allocator a beat so the test is not trivially reordered.
        std::thread::sleep(Duration::from_millis(1));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_plan_options_surface_still_works() {
        // Acceptance check: the pre-unification PlanOptions/BatchPlanner
        // entry points still compile and produce identical plans.
        let batch = vec![instance(0), instance(1)];
        let reference = PlanService::new(1).plan_batch(batch.clone(), PlannerConfig::default());
        let planner = BatchPlanner::new(1);
        let legacy = planner.plan_batch(batch.clone(), PlanOptions::default());
        assert_eq!(reference.len(), legacy.len());
        for (new, old) in reference.iter().zip(&legacy) {
            assert_eq!(new.as_slice(), old.as_slice());
        }
        let legacy_free = plan_batch(
            batch,
            PlanOptions {
                algorithm: BatchAlgorithm::SequentialLocalGreedy,
                shards: 2,
                ..Default::default()
            },
        );
        assert_eq!(legacy_free.len(), 2);
    }
}
