//! Adoption-driven replan sessions: a [`PlanSession`] owns the planning
//! state for **one** instance over its whole horizon and re-optimises the
//! remaining plan as [`AdoptionEvent`]s arrive.
//!
//! The session's contract mirrors how a storefront consumes a plan:
//!
//! 1. [`PlanSession::new`] plans the full horizon up front;
//! 2. each day the storefront shows the planned recommendations
//!    ([`PlanSession::upcoming`]) and reports what happened as a batch of
//!    events ([`PlanSession::advance`] / [`PlanSession::advance_to`]);
//! 3. the session fixes the realized prefix, conditions the instance on it
//!    ([`revmax_core::residual_instance`] — adopted classes close, rejected
//!    displays keep only their saturation memory, consumed capacity is
//!    pre-charged), replans **only the remaining horizon** through the
//!    configured incremental engine, and shifts the result back onto the
//!    original timeline.
//!
//! The replanned suffix is exactly a from-scratch plan of the residual
//! instance — the engine-parity suites assert this to 1e-9 for both engines
//! and shard counts 1 and 2 — so every engine/heap/shard knob of
//! [`PlannerConfig`] remains a pure performance knob during a session too.
//!
//! # Warm-started replans
//!
//! With [`PlannerConfig::warm_start`] set, each advance builds the residual
//! instance **incrementally** from the previous one
//! ([`revmax_core::residual_advance`]: untouched candidate rows are a pure
//! shift, only the groups of users with new events are rebuilt) and the
//! engines recycle the previous replan's saturation tables and arena
//! buffers through the session's [`EngineSnapshot`] pool. Warm and cold
//! replans produce identical plans; the `bench_session` emitter measures
//! the latency difference.
//!
//! # Sessions over a service
//!
//! [`PlanSession::attach`] routes replans through a shared [`PlanService`]:
//! `advance` then validates and applies the events, submits the replan as a
//! ticketed job, and returns immediately with [`ReplanReport::pending`]
//! set; many concurrent sessions multiplex one worker pool this way. A
//! newer event batch **cancels** the stale in-flight replan (via
//! [`crate::PlanTicket::cancel`]; a replan already running is simply
//! abandoned) before submitting its own. Collect with
//! [`PlanSession::sync`] (blocking) or [`PlanSession::try_sync`]
//! (non-blocking); until then the suffix accessors report the last
//! *collected* plan.

use crate::service::{PlanService, PlanTicket, TicketStatus};
use revmax_algorithms::{plan, plan_residual, PlannerConfig};
use revmax_core::{
    realized_revenue, residual_advance, residual_of_validated, shift_strategy, validate_events,
    AdoptionEvent, EngineSnapshot, EventError, Instance, ResidualDelta, Strategy, Triple,
};
use std::fmt;
use std::sync::Arc;

/// Why a session advance was rejected (the session state is unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The underlying event batch was invalid for the instance.
    Event(EventError),
    /// `advance_to` targeted a time at or before the current frontier.
    NotMonotone {
        /// The session's current frontier.
        now: u32,
        /// The requested frontier.
        requested: u32,
    },
    /// `advance_to` targeted a time past the horizon.
    BeyondHorizon {
        /// The instance horizon `T`.
        horizon: u32,
        /// The requested frontier.
        requested: u32,
    },
    /// An event in the batch lies at or before the already-fixed frontier.
    StaleEvent {
        /// The offending event's display triple.
        event: Triple,
        /// The session's current frontier.
        now: u32,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Event(e) => write!(f, "invalid event batch: {e}"),
            SessionError::NotMonotone { now, requested } => {
                write!(
                    f,
                    "cannot advance to t = {requested}: frontier is already t = {now}"
                )
            }
            SessionError::BeyondHorizon { horizon, requested } => {
                write!(
                    f,
                    "cannot advance to t = {requested}: horizon is T = {horizon}"
                )
            }
            SessionError::StaleEvent { event, now } => {
                write!(
                    f,
                    "event {event} lies at or before the fixed frontier t = {now}"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<EventError> for SessionError {
    fn from(e: EventError) -> Self {
        SessionError::Event(e)
    }
}

/// What one session advance did.
#[derive(Debug, Clone)]
pub struct ReplanReport {
    /// The new realization frontier.
    pub now: u32,
    /// Number of events applied by this advance.
    pub events_applied: usize,
    /// Size of the replanned suffix (0 once the horizon is exhausted).
    pub suffix_len: usize,
    /// Expected revenue of the replanned suffix under the residual model.
    pub expected_remaining_revenue: f64,
    /// Revenue realized so far across all applied adoption events.
    pub realized_revenue: f64,
    /// Whether the replan is still in flight on an attached
    /// [`PlanService`]. When set, `suffix_len` and
    /// `expected_remaining_revenue` are zero placeholders — collect the
    /// real values with [`PlanSession::sync`] / [`PlanSession::try_sync`].
    pub pending: bool,
}

/// A replan submitted to an attached service and not yet collected.
struct PendingReplan {
    ticket: PlanTicket,
    /// The frontier the replan was submitted for.
    now: u32,
    /// Events applied by the advance that submitted it (for the report).
    events_applied: usize,
}

/// A dynamic replanning session for one instance (see the module docs).
pub struct PlanSession {
    inst: Instance,
    config: PlannerConfig,
    now: u32,
    events: Vec<AdoptionEvent>,
    residual: Option<Arc<Instance>>,
    suffix: Strategy,
    expected_remaining: f64,
    realized: f64,
    replans: u32,
    /// Warm-start pool shared across this session's replans.
    snapshot: EngineSnapshot,
    /// The service ticketed replans are routed through, when attached.
    service: Option<Arc<PlanService>>,
    /// The newest submitted-but-uncollected replan (attached mode only).
    pending: Option<PendingReplan>,
}

impl PlanSession {
    /// Opens a session: plans the full horizon with `config` and fixes
    /// nothing yet (`now() == 0`).
    pub fn new(inst: Instance, config: PlannerConfig) -> Self {
        let snapshot = EngineSnapshot::new();
        let outcome = if config.warm_start {
            // Seed the warm-start pool: the full-horizon tables stay valid
            // for every residual (their horizons only shrink).
            plan_residual(
                &inst,
                &config,
                Some(&ResidualDelta::initial(snapshot.clone())),
            )
        } else {
            plan(&inst, &config)
        };
        PlanSession {
            suffix: outcome.strategy,
            expected_remaining: outcome.revenue,
            residual: None,
            now: 0,
            events: Vec::new(),
            realized: 0.0,
            replans: 0,
            inst,
            config,
            snapshot,
            service: None,
            pending: None,
        }
    }

    /// Routes every future replan through `service` as a ticketed job:
    /// [`PlanSession::advance`] then submits and returns immediately
    /// (`ReplanReport::pending`), many sessions multiplex the service's
    /// worker pool, and a newer event batch cancels the stale in-flight
    /// replan. Collect results with [`PlanSession::sync`] /
    /// [`PlanSession::try_sync`]. Any replan still pending on a previous
    /// service is collected first.
    pub fn attach(&mut self, service: &Arc<PlanService>) {
        let _ = self.sync();
        self.service = Some(Arc::clone(service));
    }

    /// Detaches the session from its service (collecting any pending
    /// replan); future advances replan inline again.
    pub fn detach(&mut self) {
        let _ = self.sync();
        self.service = None;
    }

    /// Whether replans are routed through an attached [`PlanService`].
    pub fn is_attached(&self) -> bool {
        self.service.is_some()
    }

    /// Whether a submitted replan has not been collected yet.
    pub fn replan_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// The session's warm-start pool (saturation tables + recycled engine
    /// buffers). Stays empty unless [`PlannerConfig::warm_start`] is set;
    /// benches and tests use it to verify warm starts actually engage.
    pub fn warm_snapshot(&self) -> &EngineSnapshot {
        &self.snapshot
    }

    /// Blocks until the pending replan (if any) completes and applies it,
    /// returning the finalized report. `None` when nothing was pending —
    /// including the pathological case of a replan cancelled externally.
    pub fn sync(&mut self) -> Option<ReplanReport> {
        let pending = self.pending.take()?;
        let report = pending.ticket.wait()?;
        Some(self.apply_replan(pending.now, pending.events_applied, report.outcome))
    }

    /// Applies the pending replan if it already finished; `None` when
    /// nothing is pending or the worker is still planning.
    pub fn try_sync(&mut self) -> Option<ReplanReport> {
        match self.pending.as_ref()?.ticket.try_poll() {
            TicketStatus::Done | TicketStatus::Cancelled => self.sync(),
            TicketStatus::Queued | TicketStatus::Running => None,
        }
    }

    fn apply_replan(
        &mut self,
        now: u32,
        events_applied: usize,
        outcome: revmax_algorithms::GreedyOutcome,
    ) -> ReplanReport {
        debug_assert_eq!(now, self.now, "a stale replan must never be applied");
        self.suffix = shift_strategy(&outcome.strategy, now);
        self.expected_remaining = outcome.revenue;
        self.replans += 1;
        ReplanReport {
            now,
            events_applied,
            suffix_len: self.suffix.len(),
            expected_remaining_revenue: self.expected_remaining,
            realized_revenue: self.realized,
            pending: false,
        }
    }

    /// The instance the session plans for.
    pub fn instance(&self) -> &Instance {
        &self.inst
    }

    /// The planner configuration every (re)plan uses.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// The realization frontier: every time step `≤ now` is fixed.
    pub fn now(&self) -> u32 {
        self.now
    }

    /// Whether the whole horizon has been realized.
    pub fn is_exhausted(&self) -> bool {
        self.now >= self.inst.horizon()
    }

    /// Number of replans performed (one per successful advance before the
    /// horizon was exhausted).
    pub fn replans(&self) -> u32 {
        self.replans
    }

    /// The planned suffix, on the **original** timeline (every triple has
    /// `t > now()`). Empty once the horizon is exhausted.
    pub fn planned_suffix(&self) -> &Strategy {
        &self.suffix
    }

    /// The planned recommendations for the next time step (`now() + 1`),
    /// sorted — what the storefront should display next.
    pub fn upcoming(&self) -> Vec<Triple> {
        let next = self.now + 1;
        let mut triples: Vec<Triple> = self.suffix.iter().filter(|z| z.t.value() == next).collect();
        triples.sort();
        triples
    }

    /// Every event applied so far, in application order.
    pub fn events(&self) -> &[AdoptionEvent] {
        &self.events
    }

    /// Revenue realized from the adopted events so far.
    pub fn realized_revenue(&self) -> f64 {
        self.realized
    }

    /// Expected revenue of the replanned suffix under the residual model.
    ///
    /// While a replan is pending on an attached session
    /// ([`PlanSession::replan_pending`]) this still reflects the last
    /// *collected* plan — whose suffix includes the just-realized step —
    /// so collect with [`PlanSession::sync`] / [`PlanSession::try_sync`]
    /// before reading it.
    pub fn expected_remaining_revenue(&self) -> f64 {
        self.expected_remaining
    }

    /// Realized + expected remaining revenue — the session's running
    /// estimate of the horizon's total take.
    ///
    /// While a replan is pending on an attached session the two terms
    /// briefly overlap (the realized side already counts the latest step,
    /// the expected side still plans it), so the sum transiently
    /// over-counts; it is exact again after [`PlanSession::sync`] /
    /// [`PlanSession::try_sync`] collect the pending replan.
    pub fn expected_total_revenue(&self) -> f64 {
        self.realized + self.expected_remaining
    }

    /// The residual instance the current suffix was planned against: `None`
    /// before the first advance (the suffix is the full-horizon plan) and
    /// after the horizon is exhausted.
    pub fn residual(&self) -> Option<&Instance> {
        self.residual.as_deref()
    }

    /// Advances the frontier by one time step, applying that step's events.
    pub fn advance(&mut self, events: &[AdoptionEvent]) -> Result<ReplanReport, SessionError> {
        self.advance_to(self.now + 1, events)
    }

    /// Fixes the realization through `now` (applying `events`, all of which
    /// must lie in `(self.now(), now]`) and replans the remaining horizon.
    ///
    /// On error the session is left unchanged. Displayed-but-unreported
    /// triples are simply *not realized* — the session only knows what it is
    /// told, so an unreported display contributes neither memory nor revenue.
    pub fn advance_to(
        &mut self,
        now: u32,
        events: &[AdoptionEvent],
    ) -> Result<ReplanReport, SessionError> {
        if now <= self.now {
            return Err(SessionError::NotMonotone {
                now: self.now,
                requested: now,
            });
        }
        if now > self.inst.horizon() {
            return Err(SessionError::BeyondHorizon {
                horizon: self.inst.horizon(),
                requested: now,
            });
        }
        for e in events {
            if e.t.value() <= self.now {
                return Err(SessionError::StaleEvent {
                    event: e.triple(),
                    now: self.now,
                });
            }
        }
        // Validate the cumulative history against the new frontier before
        // mutating anything (duplicates and display limits are per-history);
        // this is the single validation pass — the residual construction
        // below takes the pre-validated path.
        let mut all = self.events.clone();
        all.extend_from_slice(events);
        validate_events(&self.inst, &all, now)?;

        // This advance supersedes any replan still in flight: cancel it (a
        // queued job never runs; a running one finishes and is abandoned).
        if let Some(stale) = self.pending.take() {
            stale.ticket.cancel();
        }

        let prev_now = self.now;
        self.realized += realized_revenue(&self.inst, events);
        self.events = all;
        self.now = now;
        if now >= self.inst.horizon() {
            self.residual = None;
            self.suffix = Strategy::new();
            self.expected_remaining = 0.0;
            return Ok(ReplanReport {
                now,
                events_applied: events.len(),
                suffix_len: 0,
                expected_remaining_revenue: 0.0,
                realized_revenue: self.realized,
                pending: false,
            });
        }

        // Residual construction: incremental from the previous residual when
        // warm-starting (bit-identical to the from-scratch build — only the
        // prefix-adjacent groups are rebuilt), from scratch otherwise.
        let delta = self
            .config
            .warm_start
            .then(|| ResidualDelta::new(prev_now, now, events, self.snapshot.clone()));
        let residual = match (&delta, &self.residual) {
            (Some(delta), Some(prev)) => residual_advance(&self.inst, prev, &self.events, delta),
            _ => residual_of_validated(&self.inst, &self.events, now),
        };
        let residual = Arc::new(residual);
        self.residual = Some(Arc::clone(&residual));

        if let Some(service) = &self.service {
            // Session-over-service: submit the ticketed replan and return
            // immediately; sync()/try_sync() collect it.
            let ticket = service.submit_replan(residual, self.config, delta);
            self.pending = Some(PendingReplan {
                ticket,
                now,
                events_applied: events.len(),
            });
            Ok(ReplanReport {
                now,
                events_applied: events.len(),
                suffix_len: 0,
                expected_remaining_revenue: 0.0,
                realized_revenue: self.realized,
                pending: true,
            })
        } else {
            let outcome = plan_residual(&residual, &self.config, delta.as_ref());
            Ok(self.apply_replan(now, events.len(), outcome))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_algorithms::{EngineKind, PlanAlgorithm};
    use revmax_core::{residual_instance, revenue, AdoptionOutcome, InstanceBuilder, TimeStep};

    fn storefront_instance(seed: u32) -> Instance {
        let mut b = InstanceBuilder::new(4, 5, 4);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .item_class(3, 1)
            .item_class(4, 2);
        for i in 0..5u32 {
            b.beta(i, 0.2 + 0.15 * i as f64)
                .capacity(i, 2 + (i + seed) % 3)
                .prices(
                    i,
                    &[
                        20.0 + i as f64,
                        18.0 + i as f64,
                        22.0 - i as f64,
                        16.0 + 2.0 * i as f64,
                    ],
                );
        }
        for u in 0..4u32 {
            for i in 0..5u32 {
                if (u + i + seed).is_multiple_of(2) {
                    let base = 0.15 + 0.08 * ((u + i) % 4) as f64;
                    b.candidate(
                        u,
                        i,
                        &[base, base + 0.1, base + 0.05, base + 0.15],
                        3.0 + i as f64 * 0.3,
                    );
                }
            }
        }
        b.build().unwrap()
    }

    /// Deterministic event stream: realize the planned next-day displays,
    /// adopting every third one.
    fn realize_upcoming(session: &PlanSession) -> Vec<AdoptionEvent> {
        session
            .upcoming()
            .into_iter()
            .enumerate()
            .map(|(i, z)| AdoptionEvent {
                user: z.user,
                item: z.item,
                t: z.t,
                outcome: if i % 3 == 0 {
                    AdoptionOutcome::Adopted
                } else {
                    AdoptionOutcome::Rejected
                },
            })
            .collect()
    }

    /// The acceptance criterion of the replanning pipeline: after `k`
    /// adoption events the session's replanned suffix equals a from-scratch
    /// plan of the residual instance to 1e-9 — for both engines, shard
    /// counts 1 and 2, and warm-started as well as cold replans — and all
    /// eight configurations agree with each other.
    #[test]
    fn session_replan_matches_from_scratch_residual_plan() {
        for seed in 0..3u32 {
            let inst = storefront_instance(seed);
            let mut suffixes: Vec<Vec<Triple>> = Vec::new();
            for engine in [EngineKind::Flat, EngineKind::Hash] {
                for shards in [1u32, 2] {
                    for warm in [false, true] {
                        let cfg = PlannerConfig::default()
                            .with_engine(engine)
                            .with_shards(shards)
                            .with_warm_start(warm);
                        let mut session = PlanSession::new(inst.clone(), cfg);
                        let mut all_events = Vec::new();
                        for _day in 0..2 {
                            let events = realize_upcoming(&session);
                            all_events.extend(events.iter().copied());
                            let report = session.advance(&events).expect("advance");
                            assert_eq!(report.now, session.now());

                            // From-scratch reference: residual instance built
                            // independently, planned with the same config.
                            let residual =
                                residual_instance(&inst, &all_events, session.now()).unwrap();
                            let reference = plan(&residual, &cfg);
                            assert!(
                                (session.expected_remaining_revenue() - reference.revenue).abs()
                                    < 1e-9,
                                "seed {seed} {engine:?} {shards} shards: session {} vs scratch {}",
                                session.expected_remaining_revenue(),
                                reference.revenue
                            );
                            let shifted = shift_strategy(&reference.strategy, session.now());
                            assert_eq!(
                                session.planned_suffix().as_slice(),
                                shifted.as_slice(),
                                "seed {seed} {engine:?} {shards} shards: suffix diverged"
                            );
                            // And the reported expectation is a real evaluation of
                            // the suffix under the residual model.
                            assert!(
                                (revenue(&residual, &reference.strategy)
                                    - session.expected_remaining_revenue())
                                .abs()
                                    < 1e-9
                            );
                        }
                        if warm && engine == EngineKind::Flat {
                            // Warm starts must actually engage for the flat
                            // engine: the pool holds tables and recycled buffers.
                            assert!(session.warm_snapshot().has_tables());
                            assert!(session.warm_snapshot().pooled_buffers() > 0);
                        }
                        suffixes.push(session.planned_suffix().iter().collect());
                    }
                }
            }
            // Engine/shard/warm parity of the session path itself.
            for s in &suffixes[1..] {
                assert_eq!(
                    suffixes[0], *s,
                    "seed {seed}: engine/shard/warm configurations diverged"
                );
            }
        }
    }

    /// Warm sharded replans equal cold ones at shard counts 2 and 4 — with
    /// sequential and concurrent (2-thread) arbitration — and the
    /// shard-keyed buffer pool actually recycles: after a replan round the
    /// flat engine has returned one buffer set per shard.
    #[test]
    fn warm_sharded_replans_match_cold_across_thread_counts() {
        for seed in 0..2u32 {
            let inst = storefront_instance(seed);
            for engine in [EngineKind::Flat, EngineKind::Hash] {
                for shards in [2u32, 4] {
                    for threads in [1u32, 2] {
                        let base = PlannerConfig::default()
                            .with_engine(engine)
                            .with_shards(shards)
                            .with_shard_threads(threads);
                        let mut cold = PlanSession::new(inst.clone(), base);
                        let mut warm = PlanSession::new(inst.clone(), base.with_warm_start(true));
                        let mut pooled_after_first_day = 0;
                        for day in 0..2 {
                            let events = realize_upcoming(&cold);
                            cold.advance(&events).expect("cold advance");
                            warm.advance(&events).expect("warm advance");
                            assert!(
                                (cold.expected_remaining_revenue()
                                    - warm.expected_remaining_revenue())
                                .abs()
                                    < 1e-9,
                                "seed {seed} {engine:?} {shards} shards {threads} threads: \
                                 warm revenue diverged from cold"
                            );
                            assert_eq!(
                                cold.planned_suffix().as_slice(),
                                warm.planned_suffix().as_slice(),
                                "seed {seed} {engine:?} {shards} shards {threads} threads: \
                                 warm suffix diverged from cold"
                            );
                            if day == 0 {
                                pooled_after_first_day = warm.warm_snapshot().pooled_buffers();
                            }
                        }
                        if engine == EngineKind::Flat {
                            assert!(warm.warm_snapshot().has_tables());
                            // Steady-state recycling: every buffer set taken
                            // by a shard comes back under its key, so the
                            // pool neither grows nor drains across replans.
                            assert!(pooled_after_first_day > 0);
                            assert_eq!(
                                warm.warm_snapshot().pooled_buffers(),
                                pooled_after_first_day,
                                "the keyed pool must settle to one set per planning shard"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn full_session_walk_exhausts_the_horizon() {
        let inst = storefront_instance(1);
        let mut session = PlanSession::new(inst.clone(), PlannerConfig::default());
        assert_eq!(session.now(), 0);
        assert!(session.residual().is_none());
        let full_plan_revenue = session.expected_total_revenue();
        assert!(full_plan_revenue > 0.0);

        let mut adopted_value = 0.0;
        while !session.is_exhausted() {
            let events = realize_upcoming(&session);
            for e in &events {
                if e.is_adoption() {
                    adopted_value += inst.price(e.item, e.t);
                }
            }
            let report = session.advance(&events).expect("advance");
            assert!((report.realized_revenue - adopted_value).abs() < 1e-12);
            // The suffix never plans into the fixed prefix.
            assert!(session
                .planned_suffix()
                .iter()
                .all(|z| z.t.value() > session.now()));
        }
        assert_eq!(session.now(), inst.horizon());
        assert!(session.planned_suffix().is_empty());
        assert_eq!(session.expected_remaining_revenue(), 0.0);
        assert_eq!(session.replans(), inst.horizon() - 1);
        assert!((session.expected_total_revenue() - session.realized_revenue()).abs() < 1e-12);
    }

    #[test]
    fn adoption_events_change_the_replanned_suffix() {
        // Adopting a class must strip that user's same-class follow-ups from
        // the replanned suffix.
        let inst = storefront_instance(0);
        let cfg = PlannerConfig::default();
        let mut session = PlanSession::new(inst.clone(), cfg);
        let upcoming = session.upcoming();
        assert!(!upcoming.is_empty());
        let z = upcoming[0];
        let class = inst.class_of(z.item);
        let events = vec![AdoptionEvent {
            user: z.user,
            item: z.item,
            t: z.t,
            outcome: AdoptionOutcome::Adopted,
        }];
        session.advance(&events).unwrap();
        for s in session.planned_suffix().iter() {
            assert!(
                !(s.user == z.user && inst.class_of(s.item) == class),
                "suffix still recommends the closed class: {s}"
            );
        }
        assert!((session.realized_revenue() - inst.price(z.item, z.t)).abs() < 1e-12);
    }

    #[test]
    fn errors_leave_the_session_unchanged() {
        let inst = storefront_instance(2);
        let mut session = PlanSession::new(inst.clone(), PlannerConfig::default());
        let baseline_suffix: Vec<Triple> = session.planned_suffix().iter().collect();

        assert!(matches!(
            session.advance_to(0, &[]),
            Err(SessionError::NotMonotone { .. })
        ));
        assert!(matches!(
            session.advance_to(inst.horizon() + 1, &[]),
            Err(SessionError::BeyondHorizon { .. })
        ));
        assert!(matches!(
            session.advance_to(2, &[AdoptionEvent::adopted(0, 0, 3)]),
            Err(SessionError::Event(EventError::AfterFrontier { .. }))
        ));
        assert!(matches!(
            session.advance_to(1, &[AdoptionEvent::adopted(99, 0, 1)]),
            Err(SessionError::Event(EventError::OutOfRange { .. }))
        ));

        // Advance once for real, then try to sneak in a stale event.
        session.advance(&[]).unwrap();
        assert!(matches!(
            session.advance_to(2, &[AdoptionEvent::rejected(0, 0, 1)]),
            Err(SessionError::StaleEvent { now: 1, .. })
        ));

        assert_eq!(session.now(), 1);
        let _ = baseline_suffix; // state checked via now(); suffix replanned once
    }

    #[test]
    fn advancing_multiple_steps_at_once_works() {
        let inst = storefront_instance(0);
        let mut session = PlanSession::new(inst.clone(), PlannerConfig::default());
        // Realize nothing for two days (the storefront went down, say).
        let report = session.advance_to(2, &[]).unwrap();
        assert_eq!(report.now, 2);
        assert_eq!(report.events_applied, 0);
        assert!(session.planned_suffix().iter().all(|z| z.t.value() > 2));
        // The empty-prefix residual is the original tail: its plan revenue
        // is what the session reports.
        let residual = residual_instance(&inst, &[], 2).unwrap();
        let reference = plan(&residual, session.config());
        assert!((session.expected_remaining_revenue() - reference.revenue).abs() < 1e-9);
    }

    #[test]
    fn off_plan_displays_are_accepted() {
        // The storefront displayed something the plan never asked for; the
        // session still conditions on it.
        let inst = storefront_instance(0);
        let mut session = PlanSession::new(inst.clone(), PlannerConfig::default());
        let event = AdoptionEvent {
            user: revmax_core::UserId(0),
            item: revmax_core::ItemId(4),
            t: TimeStep(1),
            outcome: AdoptionOutcome::Adopted,
        };
        session.advance(&[event]).unwrap();
        // Class 2 (item 4) is closed for user 0 in the suffix.
        for s in session.planned_suffix().iter() {
            assert!(!(s.user.0 == 0 && inst.class_of(s.item).0 == 2));
        }
    }

    #[test]
    fn attached_sessions_match_inline_sessions() {
        // Several concurrent sessions multiplexed over one service must
        // produce exactly the plans their inline twins produce.
        let service = Arc::new(crate::PlanService::new(2));
        for warm in [false, true] {
            let mut attached: Vec<PlanSession> = Vec::new();
            let mut inline: Vec<PlanSession> = Vec::new();
            for seed in 0..3u32 {
                let cfg = PlannerConfig::default().with_warm_start(warm);
                let mut s = PlanSession::new(storefront_instance(seed), cfg);
                s.attach(&service);
                assert!(s.is_attached());
                attached.push(s);
                inline.push(PlanSession::new(storefront_instance(seed), cfg));
            }
            for _day in 0..2 {
                // Submit every session's replan before collecting any: this
                // is the multiplexing the service exists for.
                let batches: Vec<Vec<AdoptionEvent>> =
                    inline.iter().map(realize_upcoming).collect();
                for (s, events) in attached.iter_mut().zip(&batches) {
                    let report = s.advance(events).expect("advance");
                    assert!(report.pending);
                    assert!(s.replan_pending());
                }
                for (s, events) in inline.iter_mut().zip(&batches) {
                    s.advance(events).expect("advance");
                }
                for (a, i) in attached.iter_mut().zip(&inline) {
                    let report = a.sync().expect("a replan was pending");
                    assert!(!report.pending);
                    assert!(!a.replan_pending());
                    assert_eq!(
                        a.planned_suffix().as_slice(),
                        i.planned_suffix().as_slice(),
                        "attached and inline suffixes diverged (warm = {warm})"
                    );
                    assert!(
                        (a.expected_remaining_revenue() - i.expected_remaining_revenue()).abs()
                            < 1e-9
                    );
                    assert_eq!(a.replans(), i.replans());
                }
            }
        }
    }

    #[test]
    fn newer_event_batch_cancels_the_stale_inflight_replan() {
        // A 1-worker service kept busy by a chunky job: the session's first
        // replan sits queued, so the second advance must cancel it and the
        // session must end up with exactly the second replan applied.
        let service = Arc::new(crate::PlanService::new(1));
        let blocker = {
            let users = 60u32;
            let items = 30u32;
            let mut b = InstanceBuilder::new(users, items, 5);
            b.display_limit(2);
            for i in 0..items {
                b.item_class(i, i % 6)
                    .beta(i, 0.3 + 0.02 * (i % 10) as f64)
                    .capacity(i, 20)
                    .constant_price(i, 5.0 + i as f64);
            }
            for u in 0..users {
                for i in 0..items {
                    if (u + i) % 3 == 0 {
                        let p = 0.1 + 0.01 * ((u + i) % 50) as f64;
                        b.candidate(u, i, &[p, p, p, p, p], 3.0);
                    }
                }
            }
            service.submit(b.build().unwrap(), PlannerConfig::default())
        };

        let inst = storefront_instance(1);
        let mut session = PlanSession::new(inst.clone(), PlannerConfig::default());
        session.attach(&service);
        let first = session.advance(&[]).expect("advance to day 1");
        assert!(first.pending);
        // Day 2 arrives before the day-1 replan was collected: supersede it.
        let second = session.advance(&[]).expect("advance to day 2");
        assert!(second.pending);
        let report = session.sync().expect("the superseding replan completes");
        assert_eq!(report.now, 2);
        assert_eq!(session.replans(), 1, "the cancelled replan never applied");

        // The surviving suffix is the from-scratch day-2 residual plan.
        let residual = residual_instance(&inst, &[], 2).unwrap();
        let reference = plan(&residual, session.config());
        assert_eq!(
            session.planned_suffix().as_slice(),
            shift_strategy(&reference.strategy, 2).as_slice()
        );
        assert!(blocker.wait().is_some());
    }

    #[test]
    fn detach_collects_and_returns_to_inline_replanning() {
        let service = Arc::new(crate::PlanService::new(1));
        let mut session = PlanSession::new(storefront_instance(0), PlannerConfig::default());
        session.attach(&service);
        assert!(session.advance(&[]).expect("advance").pending);
        session.detach();
        assert!(!session.is_attached());
        assert!(
            !session.replan_pending(),
            "detach collects the pending replan"
        );
        assert!(session.replans() >= 1);
        // Inline again: the report is final immediately.
        let report = session.advance(&[]).expect("advance");
        assert!(!report.pending);
        assert!(report.suffix_len == session.planned_suffix().len());
    }

    #[test]
    fn try_sync_is_nonblocking_and_eventually_applies() {
        let service = Arc::new(crate::PlanService::new(1));
        let mut session = PlanSession::new(storefront_instance(2), PlannerConfig::default());
        session.attach(&service);
        assert!(session.try_sync().is_none(), "nothing pending yet");
        session.advance(&[]).expect("advance");
        let mut spins = 0u32;
        let report = loop {
            if let Some(report) = session.try_sync() {
                break report;
            }
            spins += 1;
            assert!(spins < 10_000_000, "replan never completed");
            std::thread::yield_now();
        };
        assert_eq!(report.now, 1);
        assert!(!session.replan_pending());
    }

    /// Warm-start interplay of the saturation-aggregate fast path: on a
    /// uniform-β storefront every per-day replanned suffix is identical with
    /// aggregates on and off, warm and cold, inline and attached — and the
    /// warm sessions keep recycling their (aggregate-carrying) engine
    /// buffers through the snapshot pool.
    #[test]
    fn aggregate_sessions_match_walk_sessions_warm_and_cold() {
        use revmax_algorithms::Aggregates;

        let inst = {
            let mut b = InstanceBuilder::new(4, 5, 4);
            b.display_limit(2)
                .item_class(0, 0)
                .item_class(1, 0)
                .item_class(2, 1)
                .item_class(3, 1)
                .item_class(4, 2);
            let class_beta = [0.3, 0.7, 0.5];
            for i in 0..5u32 {
                let class = [0, 0, 1, 1, 2][i as usize];
                b.beta(i, class_beta[class])
                    .capacity(i, 2 + i % 3)
                    .prices(i, &[20.0 + i as f64, 18.0, 22.0 - i as f64, 16.0]);
            }
            for u in 0..4u32 {
                for i in 0..5u32 {
                    if (u + i) % 2 == 0 {
                        let base = 0.15 + 0.08 * ((u + i) % 4) as f64;
                        b.candidate(u, i, &[base, base + 0.1, base + 0.05, base + 0.15], 3.0);
                    }
                }
            }
            b.build().unwrap()
        };
        assert!(inst.all_beta_uniform());

        let service = Arc::new(crate::PlanService::new(2));
        for warm in [false, true] {
            for attached in [false, true] {
                let make = |aggregates| {
                    let cfg = PlannerConfig::default()
                        .with_warm_start(warm)
                        .with_aggregates(aggregates);
                    let mut s = PlanSession::new(inst.clone(), cfg);
                    if attached {
                        s.attach(&service);
                    }
                    s
                };
                let mut agg = make(Aggregates::Auto);
                let mut walk = make(Aggregates::Off);
                while !agg.is_exhausted() {
                    let events = realize_upcoming(&agg);
                    agg.advance(&events).expect("advance");
                    walk.advance(&events).expect("advance");
                    if attached {
                        agg.sync();
                        walk.sync();
                    }
                    assert_eq!(
                        agg.planned_suffix().as_slice(),
                        walk.planned_suffix().as_slice(),
                        "suffixes diverged (warm = {warm}, attached = {attached})"
                    );
                    assert!(
                        (agg.expected_remaining_revenue() - walk.expected_remaining_revenue())
                            .abs()
                            < 1e-9
                    );
                }
                if warm {
                    assert!(agg.warm_snapshot().has_tables());
                    assert!(agg.warm_snapshot().pooled_buffers() > 0);
                }
            }
        }
    }

    #[test]
    fn sessions_work_with_every_algorithm() {
        let inst = storefront_instance(1);
        for algorithm in [
            PlanAlgorithm::GlobalGreedy,
            PlanAlgorithm::SequentialLocalGreedy,
            PlanAlgorithm::RandomizedLocalGreedy { permutations: 3 },
        ] {
            let cfg = PlannerConfig::default()
                .with_algorithm(algorithm)
                .with_seed(5);
            let mut session = PlanSession::new(inst.clone(), cfg);
            let events = realize_upcoming(&session);
            let report = session.advance(&events).expect("advance");
            assert!(report.expected_remaining_revenue >= 0.0);
            assert!(session
                .planned_suffix()
                .iter()
                .all(|z| z.t.value() > session.now()));
        }
    }
}
