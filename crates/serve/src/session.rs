//! Adoption-driven replan sessions: a [`PlanSession`] owns the planning
//! state for **one** instance over its whole horizon and re-optimises the
//! remaining plan as [`AdoptionEvent`]s arrive.
//!
//! The session's contract mirrors how a storefront consumes a plan:
//!
//! 1. [`PlanSession::new`] plans the full horizon up front;
//! 2. each day the storefront shows the planned recommendations
//!    ([`PlanSession::upcoming`]) and reports what happened as a batch of
//!    events ([`PlanSession::advance`] / [`PlanSession::advance_to`]);
//! 3. the session fixes the realized prefix, conditions the instance on it
//!    ([`revmax_core::residual_instance`] — adopted classes close, rejected
//!    displays keep only their saturation memory, consumed capacity is
//!    pre-charged), replans **only the remaining horizon** through the
//!    configured incremental engine, and shifts the result back onto the
//!    original timeline.
//!
//! The replanned suffix is exactly a from-scratch plan of the residual
//! instance — the engine-parity suites assert this to 1e-9 for both engines
//! and shard counts 1 and 2 — so every engine/heap/shard knob of
//! [`PlannerConfig`] remains a pure performance knob during a session too.

use revmax_algorithms::{plan, PlannerConfig};
use revmax_core::{
    realized_revenue, residual_of_validated, shift_strategy, validate_events, AdoptionEvent,
    EventError, Instance, Strategy, Triple,
};
use std::fmt;

/// Why a session advance was rejected (the session state is unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The underlying event batch was invalid for the instance.
    Event(EventError),
    /// `advance_to` targeted a time at or before the current frontier.
    NotMonotone {
        /// The session's current frontier.
        now: u32,
        /// The requested frontier.
        requested: u32,
    },
    /// `advance_to` targeted a time past the horizon.
    BeyondHorizon {
        /// The instance horizon `T`.
        horizon: u32,
        /// The requested frontier.
        requested: u32,
    },
    /// An event in the batch lies at or before the already-fixed frontier.
    StaleEvent {
        /// The offending event's display triple.
        event: Triple,
        /// The session's current frontier.
        now: u32,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Event(e) => write!(f, "invalid event batch: {e}"),
            SessionError::NotMonotone { now, requested } => {
                write!(
                    f,
                    "cannot advance to t = {requested}: frontier is already t = {now}"
                )
            }
            SessionError::BeyondHorizon { horizon, requested } => {
                write!(
                    f,
                    "cannot advance to t = {requested}: horizon is T = {horizon}"
                )
            }
            SessionError::StaleEvent { event, now } => {
                write!(
                    f,
                    "event {event} lies at or before the fixed frontier t = {now}"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<EventError> for SessionError {
    fn from(e: EventError) -> Self {
        SessionError::Event(e)
    }
}

/// What one session advance did.
#[derive(Debug, Clone)]
pub struct ReplanReport {
    /// The new realization frontier.
    pub now: u32,
    /// Number of events applied by this advance.
    pub events_applied: usize,
    /// Size of the replanned suffix (0 once the horizon is exhausted).
    pub suffix_len: usize,
    /// Expected revenue of the replanned suffix under the residual model.
    pub expected_remaining_revenue: f64,
    /// Revenue realized so far across all applied adoption events.
    pub realized_revenue: f64,
}

/// A dynamic replanning session for one instance (see the module docs).
pub struct PlanSession {
    inst: Instance,
    config: PlannerConfig,
    now: u32,
    events: Vec<AdoptionEvent>,
    residual: Option<Instance>,
    suffix: Strategy,
    expected_remaining: f64,
    realized: f64,
    replans: u32,
}

impl PlanSession {
    /// Opens a session: plans the full horizon with `config` and fixes
    /// nothing yet (`now() == 0`).
    pub fn new(inst: Instance, config: PlannerConfig) -> Self {
        let outcome = plan(&inst, &config);
        PlanSession {
            suffix: outcome.strategy,
            expected_remaining: outcome.revenue,
            residual: None,
            now: 0,
            events: Vec::new(),
            realized: 0.0,
            replans: 0,
            inst,
            config,
        }
    }

    /// The instance the session plans for.
    pub fn instance(&self) -> &Instance {
        &self.inst
    }

    /// The planner configuration every (re)plan uses.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// The realization frontier: every time step `≤ now` is fixed.
    pub fn now(&self) -> u32 {
        self.now
    }

    /// Whether the whole horizon has been realized.
    pub fn is_exhausted(&self) -> bool {
        self.now >= self.inst.horizon()
    }

    /// Number of replans performed (one per successful advance before the
    /// horizon was exhausted).
    pub fn replans(&self) -> u32 {
        self.replans
    }

    /// The planned suffix, on the **original** timeline (every triple has
    /// `t > now()`). Empty once the horizon is exhausted.
    pub fn planned_suffix(&self) -> &Strategy {
        &self.suffix
    }

    /// The planned recommendations for the next time step (`now() + 1`),
    /// sorted — what the storefront should display next.
    pub fn upcoming(&self) -> Vec<Triple> {
        let next = self.now + 1;
        let mut triples: Vec<Triple> = self.suffix.iter().filter(|z| z.t.value() == next).collect();
        triples.sort();
        triples
    }

    /// Every event applied so far, in application order.
    pub fn events(&self) -> &[AdoptionEvent] {
        &self.events
    }

    /// Revenue realized from the adopted events so far.
    pub fn realized_revenue(&self) -> f64 {
        self.realized
    }

    /// Expected revenue of the replanned suffix under the residual model.
    pub fn expected_remaining_revenue(&self) -> f64 {
        self.expected_remaining
    }

    /// Realized + expected remaining revenue — the session's running
    /// estimate of the horizon's total take.
    pub fn expected_total_revenue(&self) -> f64 {
        self.realized + self.expected_remaining
    }

    /// The residual instance the current suffix was planned against: `None`
    /// before the first advance (the suffix is the full-horizon plan) and
    /// after the horizon is exhausted.
    pub fn residual(&self) -> Option<&Instance> {
        self.residual.as_ref()
    }

    /// Advances the frontier by one time step, applying that step's events.
    pub fn advance(&mut self, events: &[AdoptionEvent]) -> Result<ReplanReport, SessionError> {
        self.advance_to(self.now + 1, events)
    }

    /// Fixes the realization through `now` (applying `events`, all of which
    /// must lie in `(self.now(), now]`) and replans the remaining horizon.
    ///
    /// On error the session is left unchanged. Displayed-but-unreported
    /// triples are simply *not realized* — the session only knows what it is
    /// told, so an unreported display contributes neither memory nor revenue.
    pub fn advance_to(
        &mut self,
        now: u32,
        events: &[AdoptionEvent],
    ) -> Result<ReplanReport, SessionError> {
        if now <= self.now {
            return Err(SessionError::NotMonotone {
                now: self.now,
                requested: now,
            });
        }
        if now > self.inst.horizon() {
            return Err(SessionError::BeyondHorizon {
                horizon: self.inst.horizon(),
                requested: now,
            });
        }
        for e in events {
            if e.t.value() <= self.now {
                return Err(SessionError::StaleEvent {
                    event: e.triple(),
                    now: self.now,
                });
            }
        }
        // Validate the cumulative history against the new frontier before
        // mutating anything (duplicates and display limits are per-history);
        // this is the single validation pass — the residual construction
        // below takes the pre-validated path.
        let mut all = self.events.clone();
        all.extend_from_slice(events);
        validate_events(&self.inst, &all, now)?;

        self.realized += realized_revenue(&self.inst, events);
        self.events = all;
        self.now = now;
        if now >= self.inst.horizon() {
            self.residual = None;
            self.suffix = Strategy::new();
            self.expected_remaining = 0.0;
        } else {
            let residual = residual_of_validated(&self.inst, &self.events, now);
            let outcome = plan(&residual, &self.config);
            self.suffix = shift_strategy(&outcome.strategy, now);
            self.expected_remaining = outcome.revenue;
            self.residual = Some(residual);
            self.replans += 1;
        }
        Ok(ReplanReport {
            now,
            events_applied: events.len(),
            suffix_len: self.suffix.len(),
            expected_remaining_revenue: self.expected_remaining,
            realized_revenue: self.realized,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_algorithms::{EngineKind, PlanAlgorithm};
    use revmax_core::{residual_instance, revenue, AdoptionOutcome, InstanceBuilder, TimeStep};

    fn storefront_instance(seed: u32) -> Instance {
        let mut b = InstanceBuilder::new(4, 5, 4);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .item_class(3, 1)
            .item_class(4, 2);
        for i in 0..5u32 {
            b.beta(i, 0.2 + 0.15 * i as f64)
                .capacity(i, 2 + (i + seed) % 3)
                .prices(
                    i,
                    &[
                        20.0 + i as f64,
                        18.0 + i as f64,
                        22.0 - i as f64,
                        16.0 + 2.0 * i as f64,
                    ],
                );
        }
        for u in 0..4u32 {
            for i in 0..5u32 {
                if (u + i + seed).is_multiple_of(2) {
                    let base = 0.15 + 0.08 * ((u + i) % 4) as f64;
                    b.candidate(
                        u,
                        i,
                        &[base, base + 0.1, base + 0.05, base + 0.15],
                        3.0 + i as f64 * 0.3,
                    );
                }
            }
        }
        b.build().unwrap()
    }

    /// Deterministic event stream: realize the planned next-day displays,
    /// adopting every third one.
    fn realize_upcoming(session: &PlanSession) -> Vec<AdoptionEvent> {
        session
            .upcoming()
            .into_iter()
            .enumerate()
            .map(|(i, z)| AdoptionEvent {
                user: z.user,
                item: z.item,
                t: z.t,
                outcome: if i % 3 == 0 {
                    AdoptionOutcome::Adopted
                } else {
                    AdoptionOutcome::Rejected
                },
            })
            .collect()
    }

    /// The acceptance criterion of the API redesign: after `k` adoption
    /// events the session's replanned suffix equals a from-scratch plan of
    /// the residual instance to 1e-9 — for both engines and shard counts
    /// 1 and 2 — and all four configurations agree with each other.
    #[test]
    fn session_replan_matches_from_scratch_residual_plan() {
        for seed in 0..3u32 {
            let inst = storefront_instance(seed);
            let mut suffixes: Vec<Vec<Triple>> = Vec::new();
            for engine in [EngineKind::Flat, EngineKind::Hash] {
                for shards in [1u32, 2] {
                    let cfg = PlannerConfig::default()
                        .with_engine(engine)
                        .with_shards(shards);
                    let mut session = PlanSession::new(inst.clone(), cfg);
                    let mut all_events = Vec::new();
                    for _day in 0..2 {
                        let events = realize_upcoming(&session);
                        all_events.extend(events.iter().copied());
                        let report = session.advance(&events).expect("advance");
                        assert_eq!(report.now, session.now());

                        // From-scratch reference: residual instance built
                        // independently, planned with the same config.
                        let residual =
                            residual_instance(&inst, &all_events, session.now()).unwrap();
                        let reference = plan(&residual, &cfg);
                        assert!(
                            (session.expected_remaining_revenue() - reference.revenue).abs() < 1e-9,
                            "seed {seed} {engine:?} {shards} shards: session {} vs scratch {}",
                            session.expected_remaining_revenue(),
                            reference.revenue
                        );
                        let shifted = shift_strategy(&reference.strategy, session.now());
                        assert_eq!(
                            session.planned_suffix().as_slice(),
                            shifted.as_slice(),
                            "seed {seed} {engine:?} {shards} shards: suffix diverged"
                        );
                        // And the reported expectation is a real evaluation of
                        // the suffix under the residual model.
                        assert!(
                            (revenue(&residual, &reference.strategy)
                                - session.expected_remaining_revenue())
                            .abs()
                                < 1e-9
                        );
                    }
                    suffixes.push(session.planned_suffix().iter().collect());
                }
            }
            // Engine/shard parity of the session path itself.
            for s in &suffixes[1..] {
                assert_eq!(
                    suffixes[0], *s,
                    "seed {seed}: engine/shard configurations diverged"
                );
            }
        }
    }

    #[test]
    fn full_session_walk_exhausts_the_horizon() {
        let inst = storefront_instance(1);
        let mut session = PlanSession::new(inst.clone(), PlannerConfig::default());
        assert_eq!(session.now(), 0);
        assert!(session.residual().is_none());
        let full_plan_revenue = session.expected_total_revenue();
        assert!(full_plan_revenue > 0.0);

        let mut adopted_value = 0.0;
        while !session.is_exhausted() {
            let events = realize_upcoming(&session);
            for e in &events {
                if e.is_adoption() {
                    adopted_value += inst.price(e.item, e.t);
                }
            }
            let report = session.advance(&events).expect("advance");
            assert!((report.realized_revenue - adopted_value).abs() < 1e-12);
            // The suffix never plans into the fixed prefix.
            assert!(session
                .planned_suffix()
                .iter()
                .all(|z| z.t.value() > session.now()));
        }
        assert_eq!(session.now(), inst.horizon());
        assert!(session.planned_suffix().is_empty());
        assert_eq!(session.expected_remaining_revenue(), 0.0);
        assert_eq!(session.replans(), inst.horizon() - 1);
        assert!((session.expected_total_revenue() - session.realized_revenue()).abs() < 1e-12);
    }

    #[test]
    fn adoption_events_change_the_replanned_suffix() {
        // Adopting a class must strip that user's same-class follow-ups from
        // the replanned suffix.
        let inst = storefront_instance(0);
        let cfg = PlannerConfig::default();
        let mut session = PlanSession::new(inst.clone(), cfg);
        let upcoming = session.upcoming();
        assert!(!upcoming.is_empty());
        let z = upcoming[0];
        let class = inst.class_of(z.item);
        let events = vec![AdoptionEvent {
            user: z.user,
            item: z.item,
            t: z.t,
            outcome: AdoptionOutcome::Adopted,
        }];
        session.advance(&events).unwrap();
        for s in session.planned_suffix().iter() {
            assert!(
                !(s.user == z.user && inst.class_of(s.item) == class),
                "suffix still recommends the closed class: {s}"
            );
        }
        assert!((session.realized_revenue() - inst.price(z.item, z.t)).abs() < 1e-12);
    }

    #[test]
    fn errors_leave_the_session_unchanged() {
        let inst = storefront_instance(2);
        let mut session = PlanSession::new(inst.clone(), PlannerConfig::default());
        let baseline_suffix: Vec<Triple> = session.planned_suffix().iter().collect();

        assert!(matches!(
            session.advance_to(0, &[]),
            Err(SessionError::NotMonotone { .. })
        ));
        assert!(matches!(
            session.advance_to(inst.horizon() + 1, &[]),
            Err(SessionError::BeyondHorizon { .. })
        ));
        assert!(matches!(
            session.advance_to(2, &[AdoptionEvent::adopted(0, 0, 3)]),
            Err(SessionError::Event(EventError::AfterFrontier { .. }))
        ));
        assert!(matches!(
            session.advance_to(1, &[AdoptionEvent::adopted(99, 0, 1)]),
            Err(SessionError::Event(EventError::OutOfRange { .. }))
        ));

        // Advance once for real, then try to sneak in a stale event.
        session.advance(&[]).unwrap();
        assert!(matches!(
            session.advance_to(2, &[AdoptionEvent::rejected(0, 0, 1)]),
            Err(SessionError::StaleEvent { now: 1, .. })
        ));

        assert_eq!(session.now(), 1);
        let _ = baseline_suffix; // state checked via now(); suffix replanned once
    }

    #[test]
    fn advancing_multiple_steps_at_once_works() {
        let inst = storefront_instance(0);
        let mut session = PlanSession::new(inst.clone(), PlannerConfig::default());
        // Realize nothing for two days (the storefront went down, say).
        let report = session.advance_to(2, &[]).unwrap();
        assert_eq!(report.now, 2);
        assert_eq!(report.events_applied, 0);
        assert!(session.planned_suffix().iter().all(|z| z.t.value() > 2));
        // The empty-prefix residual is the original tail: its plan revenue
        // is what the session reports.
        let residual = residual_instance(&inst, &[], 2).unwrap();
        let reference = plan(&residual, session.config());
        assert!((session.expected_remaining_revenue() - reference.revenue).abs() < 1e-9);
    }

    #[test]
    fn off_plan_displays_are_accepted() {
        // The storefront displayed something the plan never asked for; the
        // session still conditions on it.
        let inst = storefront_instance(0);
        let mut session = PlanSession::new(inst.clone(), PlannerConfig::default());
        let event = AdoptionEvent {
            user: revmax_core::UserId(0),
            item: revmax_core::ItemId(4),
            t: TimeStep(1),
            outcome: AdoptionOutcome::Adopted,
        };
        session.advance(&[event]).unwrap();
        // Class 2 (item 4) is closed for user 0 in the suffix.
        for s in session.planned_suffix().iter() {
            assert!(!(s.user.0 == 0 && inst.class_of(s.item).0 == 2));
        }
    }

    #[test]
    fn sessions_work_with_every_algorithm() {
        let inst = storefront_instance(1);
        for algorithm in [
            PlanAlgorithm::GlobalGreedy,
            PlanAlgorithm::SequentialLocalGreedy,
            PlanAlgorithm::RandomizedLocalGreedy { permutations: 3 },
        ] {
            let cfg = PlannerConfig::default()
                .with_algorithm(algorithm)
                .with_seed(5);
            let mut session = PlanSession::new(inst.clone(), cfg);
            let events = realize_upcoming(&session);
            let report = session.advance(&events).expect("advance");
            assert!(report.expected_remaining_revenue >= 0.0);
            assert!(session
                .planned_suffix()
                .iter()
                .all(|z| z.t.value() > session.now()));
        }
    }
}
