//! Batch-serving throughput emitter: times `plan_batch` over the persistent
//! pool across within-instance shard counts and both heap implementations,
//! measures the async front-end's submit/await round-trip overhead against
//! inline synchronous planning, and writes a machine-readable
//! `BENCH_serve.json`.
//!
//! Usage:
//! ```text
//! cargo run --release -p revmax-serve --bin bench_serve [-- out.json]
//! ```
//! Environment (parsed through the shared `revmax_core::env` module):
//! * `REVMAX_SERVE_SCALE`   — dataset scale factor (default 0.02);
//! * `REVMAX_SERVE_BATCH`   — instances per batch (default 4);
//! * `REVMAX_SERVE_SAMPLES` — timed samples per configuration (default 3);
//! * `REVMAX_SERVE_SHARDS`  — comma-separated shard counts (default `1,2,4,8`);
//! * `REVMAX_SERVE_THREADS` — comma-separated worker-thread counts for the
//!   concurrent shard executor (default `1,2,4`); 1-shard rows always run
//!   single-threaded (there is nothing to arbitrate);
//! * `REVMAX_BENCH_ENFORCE` — set to `1` to fail the run unless each
//!   heap's 1-shard, 1-worker serving row stays within 2% of inline
//!   sequential planning (the no-regression floor for the serving default).
//!
//! Samples are interleaved round-robin across configurations so host noise
//! hits every configuration equally, and the per-configuration minimum is
//! reported alongside the median. Every configuration's plans are asserted
//! equal to the sequential G-Greedy reference (relative 1e-9, identical
//! sizes) — shard count, worker-thread count, and heap are performance
//! knobs, never behaviour knobs.
//!
//! The `async_front_end` section times, for single instances on a 1-worker
//! service, the full submit → wait round trip (channel hop, ticket
//! synchronisation, worker wake-up) against planning the same instance
//! inline on the calling thread, and reports the difference as the async
//! front-end's latency overhead.
//!
//! Reading the shard numbers: the service plans through the unified `plan`
//! dispatch, so the **1-shard row is the sequential driver** (the serving
//! default) and rows ≥ 2 engage the shard-partitioned core — the speedup
//! column therefore compares the sharded core against what a 1-shard
//! request actually runs, not against the sharded machinery at one piece
//! (which the pre-`PlanService` emitter measured). Rows with
//! `shard_threads` ≥ 2 additionally run the concurrent executor: shards
//! free-run on a scoped worker pool, abundant items commit lock-free, and
//! only scarce-window moves park for value-ordered arbitration. The
//! `concurrent_speedup_over_sequential_arbitration` headline compares, per
//! heap × shard count, the best concurrent row against the 1-thread row of
//! the same configuration — the wall-clock the new executor wins on a
//! multi-core host. On a single-core host, oversubscribed worker threads
//! only add scheduling overhead, so concurrent speedups ≤ 1.0 are expected
//! there; the CI multi-core leg uploads the representative artifact. See
//! `crates/bench/README.md`.

use revmax_algorithms::{global_greedy, plan, HeapKind, PlannerConfig};
use revmax_core::{env, Instance};
use revmax_data::{generate, DatasetConfig};
use revmax_serve::PlanService;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    heap: HeapKind,
    shards: u32,
    /// Worker threads of the concurrent shard executor (1 = sequential
    /// arbitration, the pre-existing driver).
    threads: u32,
}

struct Row {
    heap: &'static str,
    shards: u32,
    threads: u32,
    workers: usize,
    median_ns: u128,
    min_ns: u128,
    instances_per_sec: f64,
    revenue: f64,
    strategy_len: usize,
    /// Fraction of committed moves that went through scarce-window
    /// arbitration (0 on sequential rows, which don't track the split).
    scarce_occupancy: f64,
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn heap_name(kind: HeapKind) -> &'static str {
    match kind {
        HeapKind::Lazy => "lazy",
        HeapKind::IndexedDary => "indexed_dary",
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let scale: f64 = env::var_or("REVMAX_SERVE_SCALE", 0.02);
    let batch_size: usize = env::var_or("REVMAX_SERVE_BATCH", 4).max(1);
    let samples: usize = env::var_or("REVMAX_SERVE_SAMPLES", 3).max(1);
    let shard_counts: Vec<u32> =
        env::var_list("REVMAX_SERVE_SHARDS").unwrap_or_else(|| vec![1, 2, 4, 8]);
    assert!(
        shard_counts.contains(&1) && shard_counts.iter().any(|&s| s >= 2),
        "REVMAX_SERVE_SHARDS must cover 1 shard and at least one >= 2"
    );
    let thread_counts: Vec<u32> =
        env::var_list("REVMAX_SERVE_THREADS").unwrap_or_else(|| vec![1, 2, 4]);
    assert!(
        thread_counts.contains(&1),
        "REVMAX_SERVE_THREADS must cover the 1-thread (sequential arbitration) baseline"
    );
    let enforce: u32 = env::var_or("REVMAX_BENCH_ENFORCE", 0);

    eprintln!("generating amazon_like().scaled({scale}) ...");
    let config = DatasetConfig::amazon_like().scaled(scale);
    let ds = generate(&config);
    let inst = &ds.instance;
    eprintln!(
        "dataset: {} users, {} items, T = {}, {} candidate pairs; batch of {batch_size}",
        inst.num_users(),
        inst.num_items(),
        inst.horizon(),
        inst.num_candidates()
    );

    // Sequential reference plan: every serving configuration must reproduce it.
    let reference = global_greedy(inst);
    eprintln!(
        "sequential reference: revenue {:.4}, |S| = {}",
        reference.revenue,
        reference.strategy.len()
    );

    // The row grid: heap × shards × worker threads. 1-shard rows run only
    // the 1-thread configuration (the executor resolves them to the
    // sequential driver regardless, so extra rows would be duplicates).
    let configs: Vec<Config> = [HeapKind::Lazy, HeapKind::IndexedDary]
        .iter()
        .flat_map(|&heap| {
            let thread_counts = &thread_counts;
            shard_counts.iter().flat_map(move |&shards| {
                thread_counts
                    .iter()
                    .filter(move |&&threads| shards >= 2 || threads == 1)
                    .map(move |&threads| Config {
                        heap,
                        shards,
                        threads,
                    })
            })
        })
        .collect();

    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let service = PlanService::new(workers);
    let mut times: Vec<Vec<u128>> = configs.iter().map(|_| Vec::new()).collect();
    let mut revenue = vec![0.0f64; configs.len()];
    let mut strategy_len = vec![0usize; configs.len()];
    let mut occupancy = vec![0.0f64; configs.len()];
    // Inline sequential baseline per heap family: the same batch planned
    // through the unified dispatch on a dedicated thread (matching the
    // service's thread placement, so the comparison isolates the serving
    // machinery rather than scheduler effects) — the
    // `REVMAX_BENCH_ENFORCE` floor for the serving default.
    let mut inline_batch_ns: Vec<Vec<u128>> = vec![Vec::new(), Vec::new()];
    // Interleave samples round-robin so host noise is shared fairly.
    for _round in 0..samples {
        for (hi, &heap) in [HeapKind::Lazy, HeapKind::IndexedDary].iter().enumerate() {
            // Mirror the service's per-plan parallelism default (off) so
            // both paths run identical code.
            let inline_config = PlannerConfig::default()
                .with_heap(heap)
                .with_parallel(Some(false));
            let t0 = Instant::now();
            std::thread::scope(|s| {
                s.spawn(|| {
                    for _ in 0..batch_size {
                        std::hint::black_box(plan(inst, &inline_config));
                    }
                });
            });
            inline_batch_ns[hi].push(t0.elapsed().as_nanos());
        }
        for (ci, cfg) in configs.iter().enumerate() {
            let planner_config = PlannerConfig::default()
                .with_shards(cfg.shards)
                .with_heap(cfg.heap)
                .with_shard_threads(cfg.threads);
            let batch: Vec<Instance> = (0..batch_size).map(|_| inst.clone()).collect();
            let t0 = Instant::now();
            let reports = service.plan_batch_reports(batch, planner_config);
            times[ci].push(t0.elapsed().as_nanos());
            for report in &reports {
                assert!(
                    (report.outcome.revenue - reference.revenue).abs()
                        <= 1e-9 * reference.revenue.abs().max(1.0),
                    "{} heap, {} shards, {} threads: plan diverged from the sequential \
                     reference: {} vs {}",
                    heap_name(cfg.heap),
                    cfg.shards,
                    cfg.threads,
                    report.outcome.revenue,
                    reference.revenue
                );
                assert_eq!(
                    report.outcome.strategy.len(),
                    reference.strategy.len(),
                    "{} heap, {} shards, {} threads: strategy size diverged",
                    heap_name(cfg.heap),
                    cfg.shards,
                    cfg.threads
                );
            }
            revenue[ci] = reports[0].outcome.revenue;
            strategy_len[ci] = reports[0].outcome.strategy.len();
            occupancy[ci] = reports[0].outcome.concurrency.scarce_occupancy();
        }
    }

    let rows: Vec<Row> = configs
        .iter()
        .enumerate()
        .map(|(ci, cfg)| {
            let median_ns = median(times[ci].clone());
            let min_ns = *times[ci].iter().min().expect("samples > 0");
            Row {
                heap: heap_name(cfg.heap),
                shards: cfg.shards,
                threads: cfg.threads,
                workers,
                median_ns,
                min_ns,
                instances_per_sec: batch_size as f64 / (median_ns as f64 / 1e9),
                revenue: revenue[ci],
                strategy_len: strategy_len[ci],
                scarce_occupancy: occupancy[ci],
            }
        })
        .collect();
    for r in &rows {
        eprintln!(
            "{:>12} heap, {} shards, {} threads: median {:>13} ns  min {:>13} ns  \
             ({:.3} instances/s, scarce occupancy {:.3})",
            r.heap,
            r.shards,
            r.threads,
            r.median_ns,
            r.min_ns,
            r.instances_per_sec,
            r.scarce_occupancy
        );
    }

    // Async front-end overhead: single instance, 1-worker service. The
    // submit/await round trip pays the channel hop + ticket synchronisation
    // + worker wake-up; the inline run is the same plan on this thread. The
    // service's per-plan parallelism default (off) is mirrored inline so the
    // two paths run identical code.
    let inline_config = PlannerConfig::default().with_parallel(Some(false));
    let single = PlanService::new(1);
    let shared = Arc::new(inst.clone());
    let mut inline_ns = Vec::with_capacity(samples);
    let mut ticket_ns = Vec::with_capacity(samples);
    for _round in 0..samples {
        let t0 = Instant::now();
        let direct = plan(inst, &inline_config);
        inline_ns.push(t0.elapsed().as_nanos());

        let t1 = Instant::now();
        let ticket = single.submit_shared(Arc::clone(&shared), PlannerConfig::default());
        let report = ticket.wait().expect("never cancelled");
        ticket_ns.push(t1.elapsed().as_nanos());
        assert!(
            (report.outcome.revenue - direct.revenue).abs() <= 1e-9 * direct.revenue.abs().max(1.0),
            "async front-end diverged from the inline plan"
        );
    }
    let inline_median = median(inline_ns.clone());
    let ticket_median = median(ticket_ns.clone());
    let overhead_pct = 100.0 * (ticket_median as f64 - inline_median as f64) / inline_median as f64;
    eprintln!(
        "async front-end: inline {inline_median} ns, submit+wait {ticket_median} ns \
         ({overhead_pct:+.3}% median round-trip overhead)"
    );

    // Per heap family: best >= 2-shard configuration vs the 1-shard baseline
    // (minimum wall time, sequential arbitration only — the shard count is
    // the only variable).
    let mut family_summaries = Vec::new();
    for heap in ["lazy", "indexed_dary"] {
        let base = rows
            .iter()
            .find(|r| r.heap == heap && r.shards == 1 && r.threads == 1)
            .expect("1-shard row");
        let best_multi = rows
            .iter()
            .filter(|r| r.heap == heap && r.shards >= 2 && r.threads == 1)
            .min_by_key(|r| r.min_ns)
            .expect(">=2-shard row");
        let speedup = base.min_ns as f64 / best_multi.min_ns as f64;
        eprintln!(
            "{heap}: best multi-shard = {} shards, {speedup:.3}x vs 1 shard",
            best_multi.shards
        );
        family_summaries.push((heap, best_multi.shards, speedup));
    }
    let best_family = family_summaries
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .expect("two families");
    if best_family.2 <= 1.0 {
        eprintln!("WARNING: no multi-shard configuration beat its 1-shard baseline on this host");
    }

    // The headline: per heap × shard count, the best concurrent row against
    // the 1-thread row of the same configuration — what the concurrent
    // executor buys over sequential arbitration on this host.
    let mut concurrent_best: Option<(&'static str, u32, u32, f64)> = None;
    for heap in ["lazy", "indexed_dary"] {
        for &shards in shard_counts.iter().filter(|&&s| s >= 2) {
            let Some(base) = rows
                .iter()
                .find(|r| r.heap == heap && r.shards == shards && r.threads == 1)
            else {
                continue;
            };
            let Some(best) = rows
                .iter()
                .filter(|r| r.heap == heap && r.shards == shards && r.threads >= 2)
                .min_by_key(|r| r.min_ns)
            else {
                continue;
            };
            let speedup = base.min_ns as f64 / best.min_ns as f64;
            if concurrent_best.is_none_or(|(_, _, _, s)| speedup > s) {
                concurrent_best = Some((heap, shards, best.threads, speedup));
            }
        }
    }
    let (c_heap, c_shards, c_threads, c_speedup) =
        concurrent_best.expect("a >=2-shard, >=2-thread row (REVMAX_SERVE_THREADS covers >=2)");
    eprintln!(
        "concurrent arbitration: best {c_speedup:.3}x over sequential \
         ({c_heap} heap, {c_shards} shards, {c_threads} threads)"
    );

    // The no-regression floor: with `REVMAX_BENCH_ENFORCE=1`, each heap's
    // 1-shard, 1-worker serving row (the serving default, routed through
    // the sequential driver) must stay within 2% of planning the same
    // batch inline.
    let mut floors = Vec::new();
    for (hi, heap) in ["lazy", "indexed_dary"].iter().enumerate() {
        let row = rows
            .iter()
            .find(|r| r.heap == *heap && r.shards == 1 && r.threads == 1)
            .expect("1-shard row");
        let inline_min = *inline_batch_ns[hi].iter().min().expect("samples > 0");
        let floor = inline_min as f64 / row.min_ns as f64;
        eprintln!("{heap}: 1-shard 1-worker serving throughput = {floor:.3}x inline sequential");
        floors.push((*heap, floor));
        if enforce == 1 && floor < 0.98 {
            eprintln!(
                "REVMAX_BENCH_ENFORCE: {heap} 1-worker serving row fell below the 0.98 floor \
                 ({floor:.3}x inline)"
            );
            std::process::exit(1);
        }
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"dataset\": \"amazon_like.scaled({scale})\",\n"
    ));
    json.push_str(&format!(
        "  \"num_users\": {}, \"num_items\": {}, \"horizon\": {}, \"num_candidates\": {},\n",
        inst.num_users(),
        inst.num_items(),
        inst.horizon(),
        inst.num_candidates()
    ));
    json.push_str(&format!(
        "  \"batch_size\": {batch_size}, \"samples\": {samples}, \"pool_workers\": {workers}, \"host_cpus\": {workers},\n"
    ));
    json.push_str(
        "  \"notes\": \"every configuration reproduces the sequential plan exactly; the service \
         plans through the unified plan() dispatch, so the 1-shard rows run the sequential \
         driver (the serving default) and rows >= 2 engage the sharded core. Rows with \
         shard_threads >= 2 run the concurrent executor: shards free-run on a scoped worker \
         pool, abundant items commit lock-free, and only scarce-window moves park for \
         value-ordered arbitration — scarce_occupancy is the arbitrated fraction. The \
         concurrent_speedup_over_sequential_arbitration headline is measured on this host; on \
         a 1-CPU host oversubscribed workers only add scheduling overhead, so values <= 1.0 \
         are expected there and the CI multi-core leg uploads the representative artifact\",\n",
    );
    json.push_str(&format!(
        "  \"reference_revenue\": {:.6}, \"reference_strategy_len\": {},\n",
        reference.revenue,
        reference.strategy.len()
    ));
    json.push_str("  \"measurements\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"heap\": \"{}\", \"shards\": {}, \"shard_threads\": {}, \"workers\": {}, \"median_ns\": {}, \"min_ns\": {}, \"instances_per_sec\": {:.4}, \"scarce_occupancy\": {:.4}, \"revenue\": {:.6}, \"strategy_len\": {}}}{}\n",
            r.heap,
            r.shards,
            r.threads,
            r.workers,
            r.median_ns,
            r.min_ns,
            r.instances_per_sec,
            r.scarce_occupancy,
            r.revenue,
            r.strategy_len,
            if idx + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"async_front_end\": {{\"mode\": \"single instance, 1-worker service\", \
         \"inline_plan_median_ns\": {inline_median}, \
         \"submit_wait_median_ns\": {ticket_median}, \
         \"inline_plan_min_ns\": {}, \"submit_wait_min_ns\": {}, \
         \"median_overhead_pct\": {overhead_pct:.4}}},\n",
        inline_ns.iter().min().expect("samples > 0"),
        ticket_ns.iter().min().expect("samples > 0"),
    ));
    json.push_str("  \"multi_shard_vs_1_shard\": {\n");
    for (idx, (heap, shards, speedup)) in family_summaries.iter().enumerate() {
        json.push_str(&format!(
            "    \"{heap}\": {{\"best_shards\": {shards}, \"speedup_over_1_shard\": {speedup:.3}}}{}\n",
            if idx + 1 < family_summaries.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"concurrent_speedup_over_sequential_arbitration\": {{\"best\": {c_speedup:.3}, \
         \"heap\": \"{c_heap}\", \"shards\": {c_shards}, \"threads\": {c_threads}}},\n"
    ));
    json.push_str("  \"serving_floor_vs_inline\": {\n");
    for (idx, (heap, floor)) in floors.iter().enumerate() {
        json.push_str(&format!(
            "    \"{heap}\": {{\"throughput_vs_inline\": {floor:.3}, \"enforced_floor\": 0.98, \"enforced\": {}}}{}\n",
            enforce == 1,
            if idx + 1 < floors.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_serve.json");
    eprintln!("wrote {out_path}");
}
