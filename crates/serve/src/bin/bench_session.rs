//! Dynamic-replanning latency emitter: drives `PlanSession`s through a
//! deterministic adoption stream and times **every per-event replan** in
//! four modes — warm-started vs cold residual rebuilds, inline vs attached
//! to a `PlanService` — then writes a machine-readable `BENCH_session.json`.
//!
//! Usage:
//! ```text
//! cargo run --release -p revmax-serve --bin bench_session [-- out.json]
//! ```
//! Environment (parsed through the shared `revmax_core::env` module):
//! * `REVMAX_SESSION_SCALE`   — dataset scale factor (default 0.02);
//! * `REVMAX_SESSION_SAMPLES` — timed full-horizon session walks per mode
//!   (default 3).
//!
//! Every mode must realize the identical event stream and produce identical
//! per-day replanned suffixes (warm starts and service routing are
//! performance knobs, never behaviour knobs) — the emitter asserts per-day
//! revenue agreement to a relative 1e-9 against the cold inline reference.
//!
//! Reading the numbers: `warm_vs_cold_speedup` compares median per-event
//! replan latency inline; the warm path skips the saturation-table rebuild
//! (one `powf` per item per time distance), recycles the engine's arena
//! buffers, and builds each residual instance incrementally
//! (`residual_advance` shifts untouched candidate rows instead of
//! recomputing them). `attached_overhead_pct` is the submit → sync round
//! trip of the ticketed session-over-service path against replanning on the
//! calling thread; with several concurrent sessions the pool amortises it.
//!
//! A `uniform_beta` section re-runs the warm inline mode on the per-class-β
//! dataset variant in three interleaved configurations: `warm_generic`
//! (`Aggregates::Off` + `kernel_batch = 0`, the full pre-kernel path),
//! `warm_walk` (walk kernels on the tournament driver) and `warm_kernels`
//! (the default compiled-kernel config). Headlines:
//! `kernels_vs_generic_replan_speedup` (the tracked number — warm replans
//! must not regress under the kernel drivers) and
//! `agg_vs_walk_replan_speedup` (aggregate vs walk kernels, kept from the
//! pre-kernel schema). Per-day parity is asserted across all three, and
//! `REVMAX_BENCH_ENFORCE=1` arms a panic if the kernels-vs-generic ratio
//! of summed **best-of-samples** per-event latencies drops below 0.95×.

use revmax_algorithms::Aggregates;
use revmax_core::{env, AdoptionEvent, AdoptionOutcome};
use revmax_data::{generate, BetaSetting, DatasetConfig};
use revmax_serve::{PlanService, PlanSession, PlannerConfig};
use std::sync::Arc;
use std::time::Instant;

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Deterministic shopper model: realize the planned next-day displays,
/// adopting every third one.
fn realize_upcoming(session: &PlanSession) -> Vec<AdoptionEvent> {
    session
        .upcoming()
        .into_iter()
        .enumerate()
        .map(|(i, z)| AdoptionEvent {
            user: z.user,
            item: z.item,
            t: z.t,
            outcome: if i % 3 == 0 {
                AdoptionOutcome::Adopted
            } else {
                AdoptionOutcome::Rejected
            },
        })
        .collect()
}

struct ModeRow {
    mode: &'static str,
    warm: bool,
    attached: bool,
    replan_ns: Vec<u128>,
    /// Expected remaining revenue after each day (parity check).
    day_revenue: Vec<f64>,
}

fn run_mode(
    inst: &revmax_core::Instance,
    warm: bool,
    attached: bool,
    samples: usize,
    service: &Arc<PlanService>,
) -> ModeRow {
    let mode = match (warm, attached) {
        (false, false) => "cold_inline",
        (true, false) => "warm_inline",
        (false, true) => "cold_attached",
        (true, true) => "warm_attached",
    };
    run_config(
        inst,
        PlannerConfig::default().with_warm_start(warm),
        mode,
        warm,
        attached,
        samples,
        service,
    )
}

fn run_config(
    inst: &revmax_core::Instance,
    config: PlannerConfig,
    mode: &'static str,
    warm: bool,
    attached: bool,
    samples: usize,
    service: &Arc<PlanService>,
) -> ModeRow {
    let mut replan_ns = Vec::new();
    let mut day_revenue = Vec::new();
    for sample in 0..samples {
        let mut session = PlanSession::new(inst.clone(), config);
        if attached {
            session.attach(service);
        }
        let mut day_revs = Vec::new();
        while !session.is_exhausted() {
            let events = realize_upcoming(&session);
            let t0 = Instant::now();
            session.advance(&events).expect("valid event batch");
            if attached {
                session.sync();
            }
            replan_ns.push(t0.elapsed().as_nanos());
            day_revs.push(session.expected_remaining_revenue());
        }
        if sample == 0 {
            day_revenue = day_revs;
        } else {
            assert_eq!(day_revenue, day_revs, "a mode diverged across samples");
        }
        if warm {
            assert!(
                session.warm_snapshot().has_tables(),
                "warm mode never engaged the snapshot pool"
            );
        }
    }
    ModeRow {
        mode,
        warm,
        attached,
        replan_ns,
        day_revenue,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_session.json".to_string());
    let scale: f64 = env::var_or("REVMAX_SESSION_SCALE", 0.02);
    let samples: usize = env::var_or("REVMAX_SESSION_SAMPLES", 3).max(1);

    eprintln!("generating amazon_like().scaled({scale}) ...");
    let config = DatasetConfig::amazon_like().scaled(scale);
    let ds = generate(&config);
    let inst = &ds.instance;
    eprintln!(
        "dataset: {} users, {} items, T = {}, {} candidate pairs",
        inst.num_users(),
        inst.num_items(),
        inst.horizon(),
        inst.num_candidates()
    );

    // One worker: per-event replan latency, not cross-session throughput —
    // the attached rows then isolate the ticketed round trip.
    let service = Arc::new(PlanService::new(1));
    let modes = [(false, false), (true, false), (false, true), (true, true)];
    let rows: Vec<ModeRow> = modes
        .iter()
        .map(|&(warm, attached)| run_mode(inst, warm, attached, samples, &service))
        .collect();

    // Parity: every mode's per-day expected remaining revenue must match
    // the cold inline reference to a relative 1e-9.
    let reference = &rows[0].day_revenue;
    for row in &rows[1..] {
        assert_eq!(reference.len(), row.day_revenue.len());
        for (day, (a, b)) in reference.iter().zip(&row.day_revenue).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "{} day {day}: {b} vs cold inline {a}",
                row.mode
            );
        }
    }

    // One median + min per row, computed once and reused everywhere below.
    let medians: Vec<u128> = rows.iter().map(|r| median(r.replan_ns.clone())).collect();
    let mins: Vec<u128> = rows
        .iter()
        .map(|r| *r.replan_ns.iter().min().expect("replans > 0"))
        .collect();
    for (idx, row) in rows.iter().enumerate() {
        eprintln!(
            "{:>14}: median {:>12} ns/replan  min {:>12} ns  ({} replans)",
            row.mode,
            medians[idx],
            mins[idx],
            row.replan_ns.len()
        );
    }
    let median_of = |mode: &str| {
        let idx = rows.iter().position(|r| r.mode == mode).expect("mode row");
        medians[idx]
    };
    let warm_speedup = median_of("cold_inline") as f64 / median_of("warm_inline") as f64;
    let attached_overhead_pct = 100.0
        * (median_of("cold_attached") as f64 - median_of("cold_inline") as f64)
        / median_of("cold_inline") as f64;
    eprintln!("warm vs cold (inline): {warm_speedup:.3}x per-event replan");
    eprintln!("attached vs inline (cold): {attached_overhead_pct:+.2}% round-trip overhead");
    if warm_speedup <= 1.0 {
        eprintln!("WARNING: warm-start replans were not faster than cold on this host");
    }

    // --- compiled kernels vs the pre-kernel path on the uniform-β variant ---
    eprintln!("generating uniform-beta (per-class) variant ...");
    let mut agg_config = DatasetConfig::amazon_like().scaled(scale);
    agg_config.beta = BetaSetting::PerClassRandom;
    agg_config.name.push_str("-classbeta");
    let agg_ds = generate(&agg_config);
    let agg_inst = &agg_ds.instance;
    assert!(agg_inst.all_beta_uniform());
    // Interleave the three modes sample by sample so host noise hits each
    // equally (run_config walks a full session per sample internally, so
    // interleave at the sample granularity here).
    let warm_cfg = PlannerConfig::default().with_warm_start(true);
    let agg_configs = [
        warm_cfg
            .with_aggregates(Aggregates::Off)
            .with_kernel_batch(0),
        warm_cfg.with_aggregates(Aggregates::Off),
        warm_cfg,
    ];
    let agg_mode_names = ["warm_generic", "warm_walk", "warm_kernels"];
    let mut agg_rows: Vec<ModeRow> = agg_configs
        .iter()
        .zip(agg_mode_names)
        .map(|(cfg, mode)| run_config(agg_inst, *cfg, mode, true, false, 1, &service))
        .collect();
    for _ in 1..samples {
        for (idx, cfg) in agg_configs.iter().enumerate() {
            let extra = run_config(agg_inst, *cfg, agg_rows[idx].mode, true, false, 1, &service);
            assert_eq!(
                agg_rows[idx].day_revenue, extra.day_revenue,
                "{} diverged across samples",
                agg_rows[idx].mode
            );
            agg_rows[idx].replan_ns.extend(extra.replan_ns);
        }
    }
    for row in &agg_rows[1..] {
        for (day, (generic, other)) in agg_rows[0]
            .day_revenue
            .iter()
            .zip(&row.day_revenue)
            .enumerate()
        {
            assert!(
                (generic - other).abs() <= 1e-9 * generic.abs().max(1.0),
                "uniform-beta day {day}: {} {other} vs warm_generic {generic}",
                row.mode
            );
        }
    }
    let agg_medians: Vec<u128> = agg_rows
        .iter()
        .map(|r| median(r.replan_ns.clone()))
        .collect();
    let agg_mins: Vec<u128> = agg_rows
        .iter()
        .map(|r| *r.replan_ns.iter().min().expect("replans > 0"))
        .collect();
    let kernels_speedup = agg_medians[0] as f64 / agg_medians[2] as f64;
    let agg_speedup = agg_medians[1] as f64 / agg_medians[2] as f64;
    eprintln!(
        "kernels vs generic (warm inline, uniform-beta): {kernels_speedup:.3}x per-event replan"
    );
    eprintln!("aggregates vs walk (warm inline, uniform-beta): {agg_speedup:.3}x per-event replan");
    if env::var_or("REVMAX_BENCH_ENFORCE", 0u32) == 1 {
        // A session's replans shrink as the horizon empties, so the global
        // min is just "the cheapest day" and noisy; enforce on the sum of
        // per-event best-of-samples latencies instead (events are matched
        // across modes — every sample replans the same days).
        let per_event_best_sum = |ns: &[u128]| -> u128 {
            let events = ns.len() / samples;
            (0..events)
                .map(|d| {
                    (0..samples)
                        .map(|s| ns[s * events + d])
                        .min()
                        .expect("sample")
                })
                .sum()
        };
        let min_ratio = per_event_best_sum(&agg_rows[0].replan_ns) as f64
            / per_event_best_sum(&agg_rows[2].replan_ns) as f64;
        assert!(
            min_ratio >= 0.95,
            "kernel drivers regressed warm replans: best-of-samples latency ratio \
             {min_ratio:.3} < 0.95"
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"dataset\": \"amazon_like.scaled({scale})\",\n"
    ));
    json.push_str(&format!(
        "  \"num_users\": {}, \"num_items\": {}, \"horizon\": {}, \"num_candidates\": {},\n",
        inst.num_users(),
        inst.num_items(),
        inst.horizon(),
        inst.num_candidates()
    ));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(
        "  \"notes\": \"per-event replan latency of a PlanSession driven through a deterministic \
         adoption stream; warm rows recycle saturation tables + engine buffers and build \
         residuals incrementally (residual_advance), attached rows pay the ticketed \
         submit -> sync round trip through a 1-worker PlanService; all four modes produce \
         identical per-day plans (asserted, relative 1e-9)\",\n",
    );
    json.push_str("  \"measurements\": [\n");
    for (idx, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"warm\": {}, \"attached\": {}, \"replans\": {}, \
             \"median_ns_per_replan\": {}, \"min_ns_per_replan\": {}}}{}\n",
            row.mode,
            row.warm,
            row.attached,
            row.replan_ns.len(),
            medians[idx],
            mins[idx],
            if idx + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"warm_vs_cold_inline_speedup\": {warm_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "  \"attached_vs_inline_overhead_pct\": {attached_overhead_pct:.3},\n"
    ));
    json.push_str("  \"uniform_beta\": {\n");
    json.push_str(&format!(
        "    \"dataset\": \"amazon_like.scaled({scale}) + BetaSetting::PerClassRandom\",\n"
    ));
    json.push_str("    \"measurements\": [\n");
    for (idx, row) in agg_rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"mode\": \"{}\", \"replans\": {}, \"median_ns_per_replan\": {}, \"min_ns_per_replan\": {}}}{}\n",
            row.mode,
            row.replan_ns.len(),
            agg_medians[idx],
            agg_mins[idx],
            if idx + 1 < agg_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"kernels_vs_generic_replan_speedup\": {kernels_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "    \"agg_vs_walk_replan_speedup\": {agg_speedup:.3}\n  }}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_session.json");
    eprintln!("wrote {out_path}");
}
