//! # revmax-serve
//!
//! The serving layer over the REVMAX planners: an **asynchronous plan
//! service** and **adoption-driven replan sessions**, both configured by the
//! single [`PlannerConfig`] from `revmax-algorithms`.
//!
//! * [`PlanService`] — a persistent pool of planning workers.
//!   [`PlanService::submit`] enqueues one instance and returns a
//!   [`PlanTicket`] immediately; the ticket supports [`PlanTicket::wait`],
//!   [`PlanTicket::wait_timeout`] (bounded, non-consuming),
//!   [`PlanTicket::try_poll`], and [`PlanTicket::cancel`]. The front-end is
//!   runtime-free (channel + condvar over the worker pool — no async
//!   runtime), and the synchronous [`PlanService::plan_batch`] /
//!   [`plan_batch`] APIs are submit-all-then-wait over the same machinery.
//! * [`PlanSession`] — owns the planning state for one instance across its
//!   horizon: report realized [`revmax_core::AdoptionEvent`]s
//!   ([`PlanSession::advance`]), and the session fixes the prefix, builds
//!   the residual instance (`revmax_core::residual_instance` — with exact,
//!   exempt-aware capacity: re-displays to prefix users are never
//!   double-charged), and replans only the remaining horizon. The
//!   replanned suffix equals a from-scratch plan of the residual instance
//!   to 1e-9 for every engine/heap/shard configuration — warm-started or
//!   not, inline or attached.
//! * [`Registry`] — id-addressed plans and sessions over one shared
//!   service, with backpressure bounds, LRU/TTL eviction, occupancy stats,
//!   and a drainable shutdown path ([`RegistryConfig`]); this is the state
//!   the `revmax-http` front end serves from.
//!
//! # Sessions over the service
//!
//! [`PlanSession::attach`] routes a session's replans through a shared
//! service: `advance` validates and applies the events, submits the replan
//! as a ticketed job, and returns immediately with
//! [`ReplanReport::pending`] set; [`PlanSession::sync`] (blocking) or
//! [`PlanSession::try_sync`] (non-blocking) collect it. Many concurrent
//! sessions multiplex one worker pool this way, and a newer event batch
//! **cancels** the stale in-flight replan ([`PlanTicket::cancel`]) before
//! submitting its own — late results are never applied.
//!
//! # Warm-started replans
//!
//! `PlannerConfig::warm_start` makes each advance build the residual
//! instance incrementally (`revmax_core::residual_advance`: untouched
//! candidate rows are a pure shift, only prefix-adjacent groups are
//! rebuilt, and the instance is assembled without re-validation) and lets
//! the engines recycle the previous replan's saturation tables and arena
//! buffers (`revmax_core::EngineSnapshot`). Latency: on the bench instance
//! (`amazon_like().scaled(0.02)`, 38k candidate pairs) warm-started
//! replans run ≈ 1.1× faster per event than cold rebuilds, and the
//! ticketed session-over-service path adds a few percent of round-trip
//! overhead on a single session — amortised away once several sessions
//! share the pool (`BENCH_session.json`, emitter: `bench_session`).
//!
//! ```
//! use revmax_serve::{PlanService, PlanSession};
//! use revmax_algorithms::PlannerConfig;
//! use revmax_core::InstanceBuilder;
//! use std::sync::Arc;
//!
//! let mut b = InstanceBuilder::new(2, 1, 2);
//! b.display_limit(1)
//!     .constant_price(0, 10.0)
//!     .candidate(0, 0, &[0.4, 0.5], 0.0)
//!     .candidate(1, 0, &[0.3, 0.2], 0.0);
//! let inst = b.build().unwrap();
//!
//! let service = Arc::new(PlanService::new(2));
//! let ticket = service.submit(inst.clone(), PlannerConfig::default()); // returns immediately
//! let report = ticket.wait().expect("not cancelled");
//! assert!(!report.outcome.strategy.is_empty());
//!
//! // Batch = submit-all-then-wait:
//! let plans = service.plan_batch(vec![inst.clone(), inst.clone()], PlannerConfig::default());
//! assert_eq!(plans.len(), 2);
//!
//! // Session over the service, with warm-started replans:
//! let mut session = PlanSession::new(inst, PlannerConfig::default().with_warm_start(true));
//! session.attach(&service);
//! let report = session.advance(&[]).unwrap(); // ticketed replan, returns immediately
//! assert!(report.pending);
//! let report = session.sync().expect("collects the replanned suffix");
//! assert!(!report.pending);
//! ```
//!
//! # Migrating from the pre-unification API
//!
//! | Deprecated | Replacement |
//! |---|---|
//! | `BatchPlanner::new(n)` | [`PlanService::new`] |
//! | `PlanOptions { algorithm, shards, engine, heap }` | [`PlannerConfig`] (builder: `with_algorithm` / `with_shards` / `with_engine` / `with_heap`) |
//! | `BatchAlgorithm::GlobalGreedy` / `::SequentialLocalGreedy` | `PlanAlgorithm::GlobalGreedy` / `::SequentialLocalGreedy` |
//! | `plan_batch(instances, PlanOptions { .. })` | [`plan_batch`]`(instances, PlannerConfig, ..)` — the function now accepts either (conversion is automatic) |
//! | `GreedyOptions::from_env()` (in `revmax-algorithms`) | `PlannerConfig::from_env()` |
//! | blocking [`PlanTicket::wait`] with an external watchdog | [`PlanTicket::wait_timeout`]`(duration)` → [`WaitOutcome`] |
//! | synchronous-only `PlanSession::advance` (replans on the calling thread) | [`PlanSession::attach`]`(&service)` + `advance` + [`PlanSession::sync`] (ticketed, cancellable) |
//! | from-scratch residual rebuild per advance | `PlannerConfig::warm_start(true)` (incremental residuals + recycled engine state; identical plans) |
//! | `residual_instance` conservative capacity (re-displays double-charged) | exact exempt-aware capacity is now the default; `ResidualMode::Conservative` keeps the old accounting |
//!
//! The deprecated names still compile and produce identical plans (asserted
//! by the compatibility tests); they are thin conversions into
//! [`PlannerConfig`].
//!
//! The `bench_serve` binary measures batch throughput across shard counts
//! plus the submit/await round-trip overhead of the async front-end
//! (`BENCH_serve.json`); the `bench_session` binary measures per-event
//! replan latency — warm vs cold, inline vs attached
//! (`BENCH_session.json`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod registry;
mod service;
mod session;

pub use registry::{PlanView, Registry, RegistryConfig, RegistryError, RegistryStats, SessionView};
pub use revmax_algorithms::{PlanAlgorithm, PlannerConfig};
pub use service::{plan_batch, PlanReport, PlanService, PlanTicket, TicketStatus, WaitOutcome};
pub use session::{PlanSession, ReplanReport, SessionError};

// Deprecated pre-unification surface (see the migration table above).
#[allow(deprecated)]
pub use service::{BatchAlgorithm, BatchPlanner, PlanOptions};
