//! # revmax-serve
//!
//! A synchronous batch-planning service layer over the shard-partitioned
//! REVMAX planners: a [`BatchPlanner`] owns a **persistent pool** of worker
//! threads, and [`BatchPlanner::plan_batch`] plans a batch of independent
//! instances over that pool — each instance planned by the sharded greedy
//! core (`revmax-algorithms::sharded`), so there are two levels of
//! parallelism:
//!
//! * **across instances** — the pool workers pull instances from a shared
//!   queue (instances are independent, so this is embarrassingly parallel);
//! * **within an instance** — each plan runs on `PlanOptions::shards` user
//!   shards with shard-local engines, tables, and heaps, coupled only
//!   through the shared capacity ledger (deterministic: the plan is
//!   identical to the sequential one at every shard count).
//!
//! The pool outlives individual batches (workers block on the queue between
//! calls), which is the shape an async front-end needs: accept a request,
//! enqueue, await the reply. The `bench_serve` binary measures batch
//! throughput across shard counts and records it in `BENCH_serve.json`.
//!
//! ```
//! use revmax_serve::{plan_batch, PlanOptions};
//! use revmax_core::InstanceBuilder;
//!
//! let mut b = InstanceBuilder::new(2, 1, 2);
//! b.display_limit(1)
//!     .constant_price(0, 10.0)
//!     .candidate(0, 0, &[0.4, 0.5], 0.0)
//!     .candidate(1, 0, &[0.3, 0.2], 0.0);
//! let inst = b.build().unwrap();
//!
//! let plans = plan_batch(vec![inst.clone(), inst], PlanOptions::default());
//! assert_eq!(plans.len(), 2);
//! assert!(!plans[0].is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use revmax_algorithms::{
    sharded_global_greedy, sharded_local_greedy, EngineKind, GreedyOptions, GreedyOutcome,
    HeapKind, LocalGreedyOptions,
};
use revmax_core::{Instance, Strategy};
use std::num::NonZeroUsize;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Which planner runs per instance of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchAlgorithm {
    /// G-Greedy (the paper's best performer, the serving default).
    #[default]
    GlobalGreedy,
    /// SL-Greedy (chronological per-time-step greedy; cheaper, lower revenue).
    SequentialLocalGreedy,
}

/// Options for a batch-planning call.
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Planner run per instance.
    pub algorithm: BatchAlgorithm,
    /// User shards per instance (`0`/`1` = sequential planning core).
    pub shards: u32,
    /// Incremental revenue engine backing every plan.
    pub engine: EngineKind,
    /// Heap implementation backing the selection loops.
    pub heap: HeapKind,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            algorithm: BatchAlgorithm::GlobalGreedy,
            shards: 1,
            engine: EngineKind::Flat,
            heap: HeapKind::default(),
        }
    }
}

impl PlanOptions {
    fn greedy_options(&self) -> GreedyOptions {
        GreedyOptions {
            engine: self.engine,
            heap: self.heap,
            shards: self.shards,
            // The pool already multiplexes instances over threads; keep the
            // per-plan init fill sequential to avoid oversubscription.
            parallel_init: false,
            ..Default::default()
        }
    }

    fn local_options(&self) -> LocalGreedyOptions {
        LocalGreedyOptions {
            engine: self.engine,
            heap: self.heap,
            shards: self.shards,
            parallel_scan: Some(false),
        }
    }
}

/// One planned instance of a batch.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Position of the instance in the submitted batch.
    pub index: usize,
    /// The planner outcome (strategy, revenue, trace, evaluation counts).
    pub outcome: GreedyOutcome,
}

struct Job {
    inst: Arc<Instance>,
    index: usize,
    opts: PlanOptions,
    reply: Sender<PlanReport>,
}

/// Plans one instance on the shard-partitioned core.
///
/// The serving layer always runs the sharded planner — a shard count of 1 is
/// the same machinery with a single shard view, so `BENCH_serve.json`'s
/// shard-count dimension compares like with like. (The raw sequential
/// drivers are benchmarked separately in `BENCH_greedy.json`.)
fn plan_one(inst: &Instance, opts: &PlanOptions) -> GreedyOutcome {
    let pieces = opts.shards.max(1) as usize;
    match opts.algorithm {
        BatchAlgorithm::GlobalGreedy => sharded_global_greedy(inst, &opts.greedy_options(), pieces),
        BatchAlgorithm::SequentialLocalGreedy => {
            let order: Vec<u32> = (1..=inst.horizon()).collect();
            sharded_local_greedy(inst, &order, &opts.local_options(), pieces)
        }
    }
}

/// A persistent pool of planning workers.
///
/// Workers are spawned once and block on a shared job queue; every
/// [`BatchPlanner::plan_batch_reports`] call enqueues its instances and
/// collects the replies, so consecutive batches reuse the same threads.
/// Dropping the planner closes the queue and joins the workers.
pub struct BatchPlanner {
    job_tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchPlanner {
    /// Spawns a pool with `workers` threads (`0` = one per unit of available
    /// hardware parallelism).
    pub fn new(workers: usize) -> Self {
        let n = if workers == 0 {
            std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
        } else {
            workers
        };
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..n)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                std::thread::spawn(move || loop {
                    // Take the next job while holding the lock only for the
                    // dequeue, then plan without blocking the queue.
                    let job = {
                        let guard = job_rx.lock().expect("job queue poisoned");
                        guard.recv()
                    };
                    let Ok(job) = job else {
                        break; // queue closed: the planner was dropped
                    };
                    let outcome = plan_one(&job.inst, &job.opts);
                    // A dropped receiver just means the caller gave up on the
                    // batch; keep serving subsequent jobs.
                    let _ = job.reply.send(PlanReport {
                        index: job.index,
                        outcome,
                    });
                })
            })
            .collect();
        BatchPlanner {
            job_tx: Some(job_tx),
            workers,
        }
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Plans every instance of the batch and returns full reports in batch
    /// order.
    pub fn plan_batch_reports(
        &self,
        instances: Vec<Instance>,
        opts: PlanOptions,
    ) -> Vec<PlanReport> {
        let n = instances.len();
        let (reply_tx, reply_rx): (Sender<PlanReport>, Receiver<PlanReport>) = channel();
        let job_tx = self.job_tx.as_ref().expect("pool is alive until drop");
        for (index, inst) in instances.into_iter().enumerate() {
            job_tx
                .send(Job {
                    inst: Arc::new(inst),
                    index,
                    opts,
                    reply: reply_tx.clone(),
                })
                .expect("workers outlive the planner");
        }
        drop(reply_tx);
        let mut slots: Vec<Option<PlanReport>> = (0..n).map(|_| None).collect();
        for report in reply_rx {
            let idx = report.index;
            slots[idx] = Some(report);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job replies exactly once"))
            .collect()
    }

    /// Plans every instance of the batch and returns the strategies in batch
    /// order (the `plan_batch(Vec<Instance>, PlanOptions) -> Vec<Strategy>`
    /// serving API).
    pub fn plan_batch(&self, instances: Vec<Instance>, opts: PlanOptions) -> Vec<Strategy> {
        self.plan_batch_reports(instances, opts)
            .into_iter()
            .map(|r| r.outcome.strategy)
            .collect()
    }
}

impl Drop for BatchPlanner {
    fn drop(&mut self) {
        drop(self.job_tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One-shot convenience: plans a batch over a transient pool sized to the
/// available hardware parallelism.
pub fn plan_batch(instances: Vec<Instance>, opts: PlanOptions) -> Vec<Strategy> {
    BatchPlanner::new(0).plan_batch(instances, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_algorithms::global_greedy;
    use revmax_core::InstanceBuilder;

    fn instance(seed: u32) -> Instance {
        let mut b = InstanceBuilder::new(3, 3, 3);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .beta(0, 0.4)
            .beta(1, 0.7)
            .beta(2, 0.9)
            .capacity(0, 1)
            .capacity(1, 2)
            .capacity(2, 2)
            .prices(0, &[30.0, 24.0, 27.0])
            .prices(1, &[10.0, 12.0, 9.0])
            .prices(2, &[15.0, 15.0, 14.0]);
        for u in 0..3 {
            let base = 0.2 + 0.1 * ((u + seed) % 3) as f64;
            b.candidate(u, 0, &[base, base + 0.2, base + 0.1], 4.0);
            b.candidate(u, 1, &[base + 0.3, base, base + 0.25], 3.5);
            b.candidate(u, 2, &[base + 0.1, base + 0.1, base + 0.15], 4.2);
        }
        b.build().unwrap()
    }

    #[test]
    fn batch_plans_match_direct_runs_at_every_shard_count() {
        let batch: Vec<Instance> = (0..4).map(instance).collect();
        let direct: Vec<f64> = batch.iter().map(|i| global_greedy(i).revenue).collect();
        for shards in [1u32, 2, 3] {
            let planner = BatchPlanner::new(2);
            let reports = planner.plan_batch_reports(
                batch.clone(),
                PlanOptions {
                    shards,
                    ..Default::default()
                },
            );
            assert_eq!(reports.len(), batch.len());
            for (i, report) in reports.iter().enumerate() {
                assert_eq!(report.index, i);
                assert!(
                    (report.outcome.revenue - direct[i]).abs() < 1e-9,
                    "instance {i} at {shards} shards: {} vs {}",
                    report.outcome.revenue,
                    direct[i]
                );
                assert!(report.outcome.strategy.validate(&batch[i]).is_ok());
            }
        }
    }

    #[test]
    fn pool_survives_multiple_batches() {
        let planner = BatchPlanner::new(1);
        for round in 0..3 {
            let strategies = planner.plan_batch(
                vec![instance(round), instance(round + 1)],
                PlanOptions::default(),
            );
            assert_eq!(strategies.len(), 2);
            assert!(strategies.iter().all(|s| !s.is_empty()));
        }
        assert_eq!(planner.worker_count(), 1);
    }

    #[test]
    fn local_greedy_batches_work_too() {
        let batch = vec![instance(0), instance(1)];
        let strategies = plan_batch(
            batch.clone(),
            PlanOptions {
                algorithm: BatchAlgorithm::SequentialLocalGreedy,
                shards: 2,
                ..Default::default()
            },
        );
        for (s, inst) in strategies.iter().zip(&batch) {
            assert!(s.validate(inst).is_ok());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(plan_batch(Vec::new(), PlanOptions::default()).is_empty());
    }
}
