//! # revmax-serve
//!
//! The serving layer over the REVMAX planners: an **asynchronous plan
//! service** and **adoption-driven replan sessions**, both configured by the
//! single [`PlannerConfig`] from `revmax-algorithms`.
//!
//! * [`PlanService`] — a persistent pool of planning workers.
//!   [`PlanService::submit`] enqueues one instance and returns a
//!   [`PlanTicket`] immediately; the ticket supports [`PlanTicket::wait`],
//!   [`PlanTicket::try_poll`], and [`PlanTicket::cancel`]. The front-end is
//!   runtime-free (channel + condvar over the worker pool — no async
//!   runtime), and the synchronous [`PlanService::plan_batch`] /
//!   [`plan_batch`] APIs are submit-all-then-wait over the same machinery.
//! * [`PlanSession`] — owns the planning state for one instance across its
//!   horizon: report realized [`AdoptionEvent`]s
//!   ([`PlanSession::advance`]), and the session fixes the prefix, builds
//!   the residual instance (`revmax_core::residual_instance`), and replans
//!   only the remaining horizon. The replanned suffix equals a from-scratch
//!   plan of the residual instance to 1e-9 for every engine/heap/shard
//!   configuration.
//!
//! Two levels of parallelism serve a batch: instances spread across the pool
//! workers (embarrassingly parallel), and each plan can run on
//! `PlannerConfig::shards` user shards coupled only through the shared
//! capacity ledger (deterministic: identical to the sequential plan at every
//! shard count).
//!
//! ```
//! use revmax_serve::PlanService;
//! use revmax_algorithms::PlannerConfig;
//! use revmax_core::InstanceBuilder;
//!
//! let mut b = InstanceBuilder::new(2, 1, 2);
//! b.display_limit(1)
//!     .constant_price(0, 10.0)
//!     .candidate(0, 0, &[0.4, 0.5], 0.0)
//!     .candidate(1, 0, &[0.3, 0.2], 0.0);
//! let inst = b.build().unwrap();
//!
//! let service = PlanService::new(2);
//! let ticket = service.submit(inst.clone(), PlannerConfig::default()); // returns immediately
//! let report = ticket.wait().expect("not cancelled");
//! assert!(!report.outcome.strategy.is_empty());
//!
//! // Batch = submit-all-then-wait:
//! let plans = service.plan_batch(vec![inst.clone(), inst], PlannerConfig::default());
//! assert_eq!(plans.len(), 2);
//! ```
//!
//! # Migrating from the pre-unification API
//!
//! | Deprecated | Replacement |
//! |---|---|
//! | `BatchPlanner::new(n)` | [`PlanService::new`] |
//! | `PlanOptions { algorithm, shards, engine, heap }` | [`PlannerConfig`] (builder: `with_algorithm` / `with_shards` / `with_engine` / `with_heap`) |
//! | `BatchAlgorithm::GlobalGreedy` / `::SequentialLocalGreedy` | `PlanAlgorithm::GlobalGreedy` / `::SequentialLocalGreedy` |
//! | `plan_batch(instances, PlanOptions { .. })` | [`plan_batch`]`(instances, PlannerConfig, ..)` — the function now accepts either (conversion is automatic) |
//! | `GreedyOptions::from_env()` (in `revmax-algorithms`) | `PlannerConfig::from_env()` |
//!
//! The deprecated names still compile and produce identical plans (asserted
//! by the compatibility tests); they are thin conversions into
//! [`PlannerConfig`].
//!
//! The `bench_serve` binary measures batch throughput across shard counts
//! plus the submit/await round-trip overhead of the async front-end, and
//! records both in `BENCH_serve.json`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod service;
mod session;

pub use revmax_algorithms::{PlanAlgorithm, PlannerConfig};
pub use service::{plan_batch, PlanReport, PlanService, PlanTicket, TicketStatus};
pub use session::{PlanSession, ReplanReport, SessionError};

// Deprecated pre-unification surface (see the migration table above).
#[allow(deprecated)]
pub use service::{BatchAlgorithm, BatchPlanner, PlanOptions};
