//! The service registry: id-addressed plans and sessions over one shared
//! [`PlanService`], with backpressure, LRU eviction, idle TTLs, and a
//! drainable shutdown path.
//!
//! This is the state the `revmax-http` front end serves from; it lives in
//! `revmax-serve` so the policy (who gets evicted, what counts as backlog)
//! is testable without sockets.
//!
//! * **Plans** — [`Registry::submit_plan`] forwards to
//!   [`PlanService::submit`] and returns a numeric plan id. Ids are issued
//!   monotonically, so a lookup can distinguish *never issued*
//!   ([`RegistryError::NotFound`]) from *issued and since evicted*
//!   ([`RegistryError::Gone`]) — the HTTP layer maps these to 404 vs 410.
//!   At most [`RegistryConfig::max_pending_plans`] submissions may be
//!   unfinished at once ([`RegistryError::PlanBacklog`], HTTP 429), and
//!   finished reports are retained LRU up to
//!   [`RegistryConfig::max_done_plans`].
//! * **Sessions** — [`Registry::open_session`] plans the full horizon,
//!   attaches the [`PlanSession`] to the shared service, and registers it.
//!   Sessions are touched on every access; the least-recently-used session
//!   is evicted when [`RegistryConfig::max_sessions`] is exceeded, and any
//!   session idle longer than [`RegistryConfig::session_ttl`] is swept on
//!   the next registry operation. Eviction never blocks on an in-flight
//!   request: the per-session lock is dropped from the map and freed when
//!   the last handler finishes — which is exactly why an evicted session
//!   answers [`RegistryError::Gone`] instead of hanging.
//! * **Stats & drain** — [`Registry::stats`] settles finished tickets and
//!   reports queue depth, live sessions, and warm snapshot-pool occupancy;
//!   [`Registry::drain`] resolves in-flight work for graceful shutdown.

use crate::service::{PlanReport, PlanService, PlanTicket, TicketStatus, WaitOutcome};
use crate::session::{PlanSession, SessionError};
use revmax_algorithms::PlannerConfig;
use revmax_core::{AdoptionEvent, Instance, Strategy};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Capacity and eviction policy for a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Maximum unfinished plan submissions before
    /// [`Registry::submit_plan`] reports backlog (HTTP 429).
    pub max_pending_plans: usize,
    /// Maximum finished plan reports retained for fetching; beyond this the
    /// least recently fetched reports are evicted (later fetches: 410).
    pub max_done_plans: usize,
    /// Maximum live sessions; beyond this the least recently used session
    /// is evicted (later requests: 410).
    pub max_sessions: usize,
    /// Idle time after which a session is swept (later requests: 410).
    pub session_ttl: Duration,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            max_pending_plans: 64,
            max_done_plans: 256,
            max_sessions: 1024,
            session_ttl: Duration::from_secs(600),
        }
    }
}

/// Why a registry operation was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// The id was never issued by this registry.
    NotFound,
    /// The id was issued, but the plan/session has since been evicted,
    /// cancelled, or closed.
    Gone,
    /// Too many unfinished plan submissions (see
    /// [`RegistryConfig::max_pending_plans`]).
    PlanBacklog {
        /// The configured pending-plan limit.
        limit: usize,
    },
    /// The session refused the advance (stale/duplicate events, beyond the
    /// horizon, …); the session state is unchanged.
    Session(SessionError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::NotFound => write!(f, "unknown id"),
            RegistryError::Gone => write!(f, "evicted or closed"),
            RegistryError::PlanBacklog { limit } => {
                write!(f, "plan backlog full (limit {limit})")
            }
            RegistryError::Session(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<SessionError> for RegistryError {
    fn from(e: SessionError) -> Self {
        RegistryError::Session(e)
    }
}

/// What a plan lookup observed.
#[derive(Debug)]
pub enum PlanView {
    /// Still queued or running; poll again.
    Pending(TicketStatus),
    /// Finished — the report stays fetchable until LRU-evicted.
    Done(PlanReport),
}

/// A snapshot of one session's externally visible state, produced by every
/// session operation (the HTTP layer serialises this).
#[derive(Debug, Clone)]
pub struct SessionView {
    /// The session id.
    pub id: u64,
    /// The realization frontier (0 = nothing realized yet).
    pub now: u32,
    /// The instance horizon `T`.
    pub horizon: u32,
    /// Whether the frontier has reached the horizon.
    pub exhausted: bool,
    /// Events applied by the operation that produced this view (0 for
    /// opens and reads).
    pub events_applied: usize,
    /// The planned remaining-horizon suffix.
    pub suffix: Strategy,
    /// Expected revenue of the suffix under the residual model.
    pub expected_remaining_revenue: f64,
    /// Revenue realized so far across all applied adoption events.
    pub realized_revenue: f64,
    /// Number of replans the session has run.
    pub replans: u32,
}

impl SessionView {
    fn of(id: u64, session: &PlanSession, events_applied: usize) -> Self {
        SessionView {
            id,
            now: session.now(),
            horizon: session.instance().horizon(),
            exhausted: session.is_exhausted(),
            events_applied,
            suffix: session.planned_suffix().clone(),
            expected_remaining_revenue: session.expected_remaining_revenue(),
            realized_revenue: session.realized_revenue(),
            replans: session.replans(),
        }
    }
}

/// Counters for `GET /statsz` (and the stress suite's leak assertions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Plan submissions still queued or running.
    pub queued_plans: usize,
    /// Finished plan reports currently retained.
    pub stored_plans: usize,
    /// Live sessions.
    pub active_sessions: usize,
    /// Warm-start buffers pooled across all live sessions' engine
    /// snapshots — the number the stress suite requires to return to
    /// baseline after eviction.
    pub pooled_snapshots: usize,
    /// Plans evicted or cancelled since the registry was created.
    pub plans_evicted: u64,
    /// Sessions evicted (LRU, TTL, or closed) since the registry was
    /// created.
    pub sessions_evicted: u64,
}

enum PlanState {
    Pending(PlanTicket),
    Done(PlanReport),
}

struct PlanEntry {
    state: PlanState,
    /// LRU stamp: bumped on completion and on every fetch.
    stamp: u64,
}

struct PlanStore {
    next_id: u64,
    next_stamp: u64,
    entries: HashMap<u64, PlanEntry>,
    evicted: u64,
}

struct SessionSlot {
    session: Arc<Mutex<PlanSession>>,
    touched: Instant,
}

struct SessionStore {
    next_id: u64,
    entries: HashMap<u64, SessionSlot>,
    evicted: u64,
}

/// Id-addressed plans and sessions over one shared [`PlanService`] (see the
/// module docs).
pub struct Registry {
    service: Arc<PlanService>,
    config: RegistryConfig,
    plans: Mutex<PlanStore>,
    sessions: Mutex<SessionStore>,
}

impl Registry {
    /// Creates a registry over `service` with the given policy.
    pub fn new(service: Arc<PlanService>, config: RegistryConfig) -> Self {
        Registry {
            service,
            config,
            plans: Mutex::new(PlanStore {
                next_id: 0,
                next_stamp: 0,
                entries: HashMap::new(),
                evicted: 0,
            }),
            sessions: Mutex::new(SessionStore {
                next_id: 0,
                entries: HashMap::new(),
                evicted: 0,
            }),
        }
    }

    /// The shared plan service the registry submits to.
    pub fn service(&self) -> &Arc<PlanService> {
        &self.service
    }

    /// The registry's capacity/eviction policy.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    // -- plans -------------------------------------------------------------

    /// Submits an instance for asynchronous planning; returns the plan id
    /// to poll with [`Registry::plan_status`].
    pub fn submit_plan(&self, inst: Instance, config: PlannerConfig) -> Result<u64, RegistryError> {
        let mut plans = self.plans.lock().expect("plan store poisoned");
        Self::settle_finished(&mut plans);
        let pending = plans
            .entries
            .values()
            .filter(|e| matches!(e.state, PlanState::Pending(_)))
            .count();
        if pending >= self.config.max_pending_plans {
            return Err(RegistryError::PlanBacklog {
                limit: self.config.max_pending_plans,
            });
        }
        let ticket = self.service.submit(inst, config);
        let id = plans.next_id;
        plans.next_id += 1;
        let stamp = plans.next_stamp;
        plans.next_stamp += 1;
        plans.entries.insert(
            id,
            PlanEntry {
                state: PlanState::Pending(ticket),
                stamp,
            },
        );
        Ok(id)
    }

    /// Looks up a plan: still pending, or the finished report (refreshing
    /// its LRU stamp).
    pub fn plan_status(&self, id: u64) -> Result<PlanView, RegistryError> {
        let mut plans = self.plans.lock().expect("plan store poisoned");
        Self::settle_finished(&mut plans);
        self.evict_done_overflow(&mut plans);
        let next_id = plans.next_id;
        let stamp = plans.next_stamp;
        let Some(entry) = plans.entries.get_mut(&id) else {
            return Err(if id < next_id {
                RegistryError::Gone
            } else {
                RegistryError::NotFound
            });
        };
        match &entry.state {
            PlanState::Pending(ticket) => Ok(PlanView::Pending(ticket.try_poll())),
            PlanState::Done(report) => {
                let view = PlanView::Done(report.clone());
                entry.stamp = stamp;
                plans.next_stamp += 1;
                Ok(view)
            }
        }
    }

    /// Collects every finished ticket's report into the store (tickets hand
    /// their report over exactly once) and drops cancelled entries.
    fn settle_finished(plans: &mut PlanStore) {
        let ids: Vec<u64> = plans
            .entries
            .iter()
            .filter(|(_, e)| matches!(e.state, PlanState::Pending(_)))
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            let Some(entry) = plans.entries.get_mut(&id) else {
                continue;
            };
            let PlanState::Pending(ticket) = &entry.state else {
                continue;
            };
            match ticket.wait_timeout(Duration::ZERO) {
                WaitOutcome::Done(report) => {
                    entry.state = PlanState::Done(report);
                    entry.stamp = plans.next_stamp;
                    plans.next_stamp += 1;
                }
                WaitOutcome::Cancelled => {
                    plans.entries.remove(&id);
                    plans.evicted += 1;
                }
                WaitOutcome::TimedOut => {}
            }
        }
    }

    /// Evicts the least recently fetched finished reports beyond the
    /// retention limit.
    fn evict_done_overflow(&self, plans: &mut PlanStore) {
        loop {
            let done = plans
                .entries
                .iter()
                .filter(|(_, e)| matches!(e.state, PlanState::Done(_)))
                .count();
            if done <= self.config.max_done_plans {
                return;
            }
            let Some(oldest) = plans
                .entries
                .iter()
                .filter(|(_, e)| matches!(e.state, PlanState::Done(_)))
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&id, _)| id)
            else {
                return;
            };
            plans.entries.remove(&oldest);
            plans.evicted += 1;
        }
    }

    // -- sessions ----------------------------------------------------------

    /// Opens a replanning session: plans the full horizon with `config`,
    /// attaches the session to the shared service, and registers it.
    ///
    /// Opening never reports backlog — if the registry is at
    /// [`RegistryConfig::max_sessions`], the least recently used session is
    /// evicted to make room (it answers [`RegistryError::Gone`] afterwards).
    pub fn open_session(
        &self,
        inst: Instance,
        config: PlannerConfig,
    ) -> Result<(u64, SessionView), RegistryError> {
        // The initial full-horizon plan runs on the caller's thread, outside
        // every registry lock.
        let mut session = PlanSession::new(inst, config);
        session.attach(&self.service);
        let mut store = self.sessions.lock().expect("session store poisoned");
        self.sweep_idle(&mut store);
        let id = store.next_id;
        store.next_id += 1;
        let view = SessionView::of(id, &session, 0);
        store.entries.insert(
            id,
            SessionSlot {
                session: Arc::new(Mutex::new(session)),
                touched: Instant::now(),
            },
        );
        while store.entries.len() > self.config.max_sessions {
            let Some(oldest) = store
                .entries
                .iter()
                .filter(|(&sid, _)| sid != id)
                .min_by_key(|(_, slot)| slot.touched)
                .map(|(&sid, _)| sid)
            else {
                break;
            };
            store.entries.remove(&oldest);
            store.evicted += 1;
        }
        Ok((id, view))
    }

    /// Applies an event batch and replans the suffix. `now` advances the
    /// frontier to an explicit step; `None` advances by one.
    ///
    /// The ticketed replan is collected before returning, so the view is
    /// never pending. On error the session is unchanged.
    pub fn advance_session(
        &self,
        id: u64,
        now: Option<u32>,
        events: &[AdoptionEvent],
    ) -> Result<SessionView, RegistryError> {
        let slot = self.session_slot(id)?;
        let mut session = slot.lock().expect("session poisoned");
        let target = now.unwrap_or_else(|| session.now() + 1);
        let report = session.advance_to(target, events)?;
        let events_applied = report.events_applied;
        if report.pending {
            let _ = session.sync();
        }
        Ok(SessionView::of(id, &session, events_applied))
    }

    /// The session's current suffix and counters, without advancing it.
    pub fn session_view(&self, id: u64) -> Result<SessionView, RegistryError> {
        let slot = self.session_slot(id)?;
        let mut session = slot.lock().expect("session poisoned");
        // Collect a replan a previous (cancelled-midway) request left
        // in flight, so reads never observe placeholder zeros.
        if session.replan_pending() {
            let _ = session.sync();
        }
        Ok(SessionView::of(id, &session, 0))
    }

    /// Closes a session explicitly; later requests answer
    /// [`RegistryError::Gone`].
    pub fn close_session(&self, id: u64) -> Result<(), RegistryError> {
        let mut store = self.sessions.lock().expect("session store poisoned");
        self.sweep_idle(&mut store);
        if store.entries.remove(&id).is_some() {
            store.evicted += 1;
            return Ok(());
        }
        Err(if id < store.next_id {
            RegistryError::Gone
        } else {
            RegistryError::NotFound
        })
    }

    fn session_slot(&self, id: u64) -> Result<Arc<Mutex<PlanSession>>, RegistryError> {
        let mut store = self.sessions.lock().expect("session store poisoned");
        self.sweep_idle(&mut store);
        let next_id = store.next_id;
        match store.entries.get_mut(&id) {
            Some(slot) => {
                slot.touched = Instant::now();
                Ok(Arc::clone(&slot.session))
            }
            None => Err(if id < next_id {
                RegistryError::Gone
            } else {
                RegistryError::NotFound
            }),
        }
    }

    /// Evicts sessions idle past the TTL. Called on every session
    /// operation; the map lock is held, the per-session locks are not —
    /// an in-flight request on an evicted session finishes normally and
    /// the state is freed when its `Arc` clone drops.
    fn sweep_idle(&self, store: &mut SessionStore) {
        let ttl = self.config.session_ttl;
        let now = Instant::now();
        let expired: Vec<u64> = store
            .entries
            .iter()
            .filter(|(_, slot)| now.duration_since(slot.touched) > ttl)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            store.entries.remove(&id);
            store.evicted += 1;
        }
    }

    // -- stats & shutdown --------------------------------------------------

    /// Settles finished tickets and reports current occupancy.
    pub fn stats(&self) -> RegistryStats {
        let (queued_plans, stored_plans, plans_evicted) = {
            let mut plans = self.plans.lock().expect("plan store poisoned");
            Self::settle_finished(&mut plans);
            let queued = plans
                .entries
                .values()
                .filter(|e| matches!(e.state, PlanState::Pending(_)))
                .count();
            (queued, plans.entries.len() - queued, plans.evicted)
        };
        let (slots, active_sessions, sessions_evicted) = {
            let mut store = self.sessions.lock().expect("session store poisoned");
            self.sweep_idle(&mut store);
            let slots: Vec<Arc<Mutex<PlanSession>>> = store
                .entries
                .values()
                .map(|slot| Arc::clone(&slot.session))
                .collect();
            (slots, store.entries.len(), store.evicted)
        };
        // Per-session locks are taken after the map lock is released, so a
        // long-running advance delays stats instead of deadlocking them.
        let pooled_snapshots = slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("session poisoned")
                    .warm_snapshot()
                    .pooled_buffers()
            })
            .sum();
        RegistryStats {
            queued_plans,
            stored_plans,
            active_sessions,
            pooled_snapshots,
            plans_evicted,
            sessions_evicted,
        }
    }

    /// Drains in-flight work for graceful shutdown: waits (up to `timeout`)
    /// for pending plan tickets to finish and collects every session's
    /// in-flight replan. Returns `true` when fully drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        // Sessions first: collecting a replan frees a service worker.
        let slots: Vec<Arc<Mutex<PlanSession>>> = {
            let store = self.sessions.lock().expect("session store poisoned");
            store
                .entries
                .values()
                .map(|slot| Arc::clone(&slot.session))
                .collect()
        };
        for slot in slots {
            let mut session = slot.lock().expect("session poisoned");
            if session.replan_pending() {
                let _ = session.sync();
            }
        }
        loop {
            {
                let mut plans = self.plans.lock().expect("plan store poisoned");
                Self::settle_finished(&mut plans);
                if !plans
                    .entries
                    .values()
                    .any(|e| matches!(e.state, PlanState::Pending(_)))
                {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::InstanceBuilder;

    fn storefront() -> Instance {
        let mut b = InstanceBuilder::new(4, 3, 4);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .capacity(0, 2)
            .capacity(1, 2)
            .capacity(2, 3)
            .beta(0, 0.3)
            .beta(1, 0.3)
            .beta(2, 0.8)
            .prices(0, &[10.0, 9.0, 8.0, 7.0])
            .prices(1, &[6.0, 6.0, 6.0, 6.0])
            .prices(2, &[3.0, 3.5, 4.0, 4.5]);
        for u in 0..4 {
            let base = 0.1 + 0.05 * f64::from(u);
            b.candidate(u, 0, &[base, 0.2, 0.3, 0.1], 4.0);
            b.candidate(u, 1, &[0.2, base, 0.1, 0.3], 3.5);
            b.candidate(u, 2, &[0.3, 0.1, base, 0.2], 3.0);
        }
        b.build().expect("storefront instance is valid")
    }

    fn registry(config: RegistryConfig) -> Registry {
        Registry::new(Arc::new(PlanService::new(2)), config)
    }

    fn wait_done(reg: &Registry, id: u64) -> PlanReport {
        for _ in 0..2000 {
            match reg.plan_status(id).expect("plan exists") {
                PlanView::Done(report) => return report,
                PlanView::Pending(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        panic!("plan {id} did not finish");
    }

    #[test]
    fn plan_lifecycle_submit_poll_refetch() {
        let reg = registry(RegistryConfig::default());
        let id = reg
            .submit_plan(storefront(), PlannerConfig::default())
            .expect("no backlog");
        let report = wait_done(&reg, id);
        assert!(report.outcome.revenue > 0.0);
        // Reports stay fetchable (poll/fetch, not fetch-once).
        let again = wait_done(&reg, id);
        assert_eq!(again.outcome.revenue, report.outcome.revenue);
        assert_eq!(
            again.outcome.strategy.as_slice(),
            report.outcome.strategy.as_slice()
        );
        // Unknown ids are NotFound, not Gone.
        assert!(matches!(reg.plan_status(999), Err(RegistryError::NotFound)));
    }

    #[test]
    fn plan_backlog_limit_reports_429_shape() {
        let reg = registry(RegistryConfig {
            max_pending_plans: 0,
            ..RegistryConfig::default()
        });
        assert!(matches!(
            reg.submit_plan(storefront(), PlannerConfig::default()),
            Err(RegistryError::PlanBacklog { limit: 0 })
        ));
        // Settling frees capacity: with limit 1, a finished plan no longer
        // counts against the backlog.
        let reg = registry(RegistryConfig {
            max_pending_plans: 1,
            ..RegistryConfig::default()
        });
        let first = reg
            .submit_plan(storefront(), PlannerConfig::default())
            .expect("first fits");
        wait_done(&reg, first);
        reg.submit_plan(storefront(), PlannerConfig::default())
            .expect("finished plans do not clog the backlog");
    }

    #[test]
    fn done_plans_are_lru_evicted_to_gone() {
        let reg = registry(RegistryConfig {
            max_done_plans: 2,
            ..RegistryConfig::default()
        });
        let ids: Vec<u64> = (0..2)
            .map(|_| {
                let id = reg
                    .submit_plan(storefront(), PlannerConfig::default())
                    .expect("no backlog");
                wait_done(&reg, id);
                id
            })
            .collect();
        // Touch the older report so the second one is the LRU victim.
        wait_done(&reg, ids[0]);
        let id = reg
            .submit_plan(storefront(), PlannerConfig::default())
            .expect("no backlog");
        wait_done(&reg, id);
        assert!(matches!(reg.plan_status(ids[1]), Err(RegistryError::Gone)));
        wait_done(&reg, ids[0]);
        assert!(reg.stats().plans_evicted >= 1);
    }

    #[test]
    fn session_round_trip_matches_inline_session() {
        let inst = storefront();
        let config = PlannerConfig::default().with_warm_start(true);
        let reg = registry(RegistryConfig::default());
        let (id, view) = reg.open_session(inst.clone(), config).expect("opens");
        assert_eq!(view.now, 0);
        assert!(!view.suffix.is_empty());

        // Twin session, driven inline with identical events.
        let mut twin = PlanSession::new(inst, config);
        let events: Vec<AdoptionEvent> = twin
            .upcoming()
            .iter()
            .filter(|z| z.t.value() == 1)
            .take(1)
            .map(|z| AdoptionEvent::adopted(z.user.0, z.item.0, 1))
            .collect();
        let view = reg
            .advance_session(id, Some(1), &events)
            .expect("advance applies");
        let twin_report = twin.advance_to(1, &events).expect("twin advances");
        assert_eq!(view.events_applied, events.len());
        assert_eq!(view.suffix.len(), twin_report.suffix_len);
        assert!(
            (view.expected_remaining_revenue - twin_report.expected_remaining_revenue).abs() < 1e-9
        );
        assert!((view.realized_revenue - twin_report.realized_revenue).abs() < 1e-9);
        assert_eq!(view.suffix.as_slice(), twin.planned_suffix().as_slice());

        // Reads see the same state without advancing.
        let read = reg.session_view(id).expect("session exists");
        assert_eq!(read.now, 1);
        assert_eq!(read.suffix.as_slice(), view.suffix.as_slice());

        // Stale events are refused and leave the session untouched.
        let stale = AdoptionEvent::adopted(0, 0, 1);
        assert!(matches!(
            reg.advance_session(id, Some(2), &[stale]),
            Err(RegistryError::Session(SessionError::StaleEvent { .. }))
        ));
        assert_eq!(reg.session_view(id).expect("still live").now, 1);
    }

    #[test]
    fn closed_and_unknown_sessions_answer_gone_vs_not_found() {
        let reg = registry(RegistryConfig::default());
        let (id, _) = reg
            .open_session(storefront(), PlannerConfig::default())
            .expect("opens");
        reg.close_session(id).expect("closes");
        assert!(matches!(reg.session_view(id), Err(RegistryError::Gone)));
        assert!(matches!(reg.close_session(id), Err(RegistryError::Gone)));
        assert!(matches!(
            reg.session_view(id + 1),
            Err(RegistryError::NotFound)
        ));
        assert!(matches!(
            reg.advance_session(id, None, &[]),
            Err(RegistryError::Gone)
        ));
    }

    #[test]
    fn lru_session_eviction_keeps_the_recently_used() {
        let reg = registry(RegistryConfig {
            max_sessions: 2,
            ..RegistryConfig::default()
        });
        let (a, _) = reg
            .open_session(storefront(), PlannerConfig::default())
            .expect("opens");
        let (b, _) = reg
            .open_session(storefront(), PlannerConfig::default())
            .expect("opens");
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        reg.session_view(a).expect("a is live");
        let (c, _) = reg
            .open_session(storefront(), PlannerConfig::default())
            .expect("opens");
        assert!(matches!(reg.session_view(b), Err(RegistryError::Gone)));
        reg.session_view(a).expect("a survived");
        reg.session_view(c).expect("c is live");
        assert_eq!(reg.stats().active_sessions, 2);
        assert_eq!(reg.stats().sessions_evicted, 1);
    }

    #[test]
    fn idle_sessions_are_swept_by_ttl() {
        let reg = registry(RegistryConfig {
            session_ttl: Duration::from_millis(30),
            ..RegistryConfig::default()
        });
        let (id, _) = reg
            .open_session(storefront(), PlannerConfig::default())
            .expect("opens");
        reg.session_view(id).expect("fresh session is live");
        std::thread::sleep(Duration::from_millis(60));
        assert!(matches!(reg.session_view(id), Err(RegistryError::Gone)));
        assert_eq!(reg.stats().active_sessions, 0);
    }

    #[test]
    fn stats_track_snapshot_pool_occupancy_back_to_baseline() {
        let reg = registry(RegistryConfig::default());
        let config = PlannerConfig::default().with_warm_start(true);
        let baseline = reg.stats().pooled_snapshots;
        let mut ids = Vec::new();
        for _ in 0..3 {
            let (id, _) = reg.open_session(storefront(), config).expect("opens");
            reg.advance_session(id, None, &[]).expect("advances");
            ids.push(id);
        }
        // Live warm sessions may pool buffers; closing them must free all.
        for id in ids {
            reg.close_session(id).expect("closes");
        }
        assert_eq!(reg.stats().pooled_snapshots, baseline);
        assert_eq!(reg.stats().active_sessions, 0);
    }

    #[test]
    fn drain_resolves_pending_work() {
        let reg = registry(RegistryConfig::default());
        let ids: Vec<u64> = (0..4)
            .map(|_| {
                reg.submit_plan(storefront(), PlannerConfig::default())
                    .expect("no backlog")
            })
            .collect();
        let (sid, _) = reg
            .open_session(storefront(), PlannerConfig::default())
            .expect("opens");
        assert!(reg.drain(Duration::from_secs(30)), "drain completes");
        assert_eq!(reg.stats().queued_plans, 0);
        for id in ids {
            wait_done(&reg, id);
        }
        reg.session_view(sid).expect("session survives a drain");
    }
}
